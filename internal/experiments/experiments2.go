package experiments

import (
	"fmt"
	"path"
	"path/filepath"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/cluster"
	"metamess/internal/core"
	"metamess/internal/geo"
	"metamess/internal/metrics"
	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/search"
	"metamess/internal/semdiv"
	"metamess/internal/table"
	"metamess/internal/validate"
	"metamess/internal/vocab"
	"metamess/internal/workload"
)

// Figure3WranglingChain reproduces the wrangling-process figure: the
// mess metric after every chain stage, plus full-run vs incremental
// rerun cost.
func Figure3WranglingChain(dir string, datasets int, seed int64) (*Table, error) {
	m, err := archive.Generate(dir, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		return nil, err
	}
	_ = m
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		return nil, err
	}
	ctx := core.NewContext(k, scan.Config{Root: dir})
	p := core.NewProcess("figure3", core.DefaultChain()...)

	firstStart := time.Now()
	report, err := p.Run(ctx)
	if err != nil {
		return nil, err
	}
	firstDuration := time.Since(firstStart)

	t := &Table{
		ID:     "F3",
		Title:  "The metadata wrangling process: mess after each component",
		Header: []string{"stage", "distinct", "canonical", "excluded", "unresolved", "coverage", "duration"},
	}
	row := func(stage string, mr core.MessReport, d time.Duration) []string {
		return []string{
			stage,
			fmt.Sprintf("%d", mr.DistinctNames),
			fmt.Sprintf("%d", mr.CanonicalNames),
			fmt.Sprintf("%d", mr.ExcludedNames),
			fmt.Sprintf("%d", mr.UnresolvedNames),
			fmt.Sprintf("%.3f", mr.OccurrenceCoverage),
			d.Round(time.Microsecond).String(),
		}
	}
	t.Rows = append(t.Rows, row("(before)", report.MessBefore, 0))
	for _, s := range report.Steps {
		t.Rows = append(t.Rows, row(s.Component, s.MessAfter, s.Duration))
	}

	rerunStart := time.Now()
	rerun, err := p.Run(ctx)
	if err != nil {
		return nil, err
	}
	rerunDuration := time.Since(rerunStart)
	t.Notes = append(t.Notes,
		fmt.Sprintf("full run %v; incremental rerun %v (%.1fx faster; %d files re-parsed)",
			firstDuration.Round(time.Millisecond), rerunDuration.Round(time.Millisecond),
			float64(firstDuration)/float64(rerunDuration),
			rerun.Steps[0].Counters["parsed"]))
	return t, nil
}

// Figure4Discovery reproduces the Google-Refine figure: clustering
// methods over the messy corpus at several mess levels, scoring the
// generated mass-edit rules against ground truth, and verifying that
// exported JSON rules replay identically.
func Figure4Discovery(dirs []string, messScales []float64, datasets int, seed int64) (*Table, error) {
	if len(dirs) != len(messScales) {
		return nil, fmt.Errorf("experiments: need one dir per mess scale")
	}
	methods := []cluster.Method{
		cluster.Fingerprint(),
		cluster.NGramFingerprint(1),
		cluster.Phonetic(),
		cluster.Levenshtein(0.84),
		cluster.JaroWinkler(0.93),
	}
	t := &Table{
		ID:     "F4",
		Title:  "Discovering transformations (Refine-style clustering)",
		Header: []string{"mess", "method", "clusters", "edits", "precision", "recall", "replay"},
	}
	for i, scale := range messScales {
		cfg := archive.DefaultGenConfig(datasets, seed)
		cfg.Mess = archive.DefaultMess().Scale(scale)
		m, err := archive.Generate(dirs[i], cfg)
		if err != nil {
			return nil, err
		}
		canonical := m.CanonicalFor()
		corpus := workload.Corpus(m)
		// The discovery target: raw forms whose canonical differs.
		target := 0
		for _, ln := range corpus {
			if ln.Canonical != ln.Raw && ln.Category != semdiv.CatExcessive {
				target++
			}
		}
		grid := gridFromCorpus(corpus)
		gridCounts, err := grid.ValueCounts("field")
		if err != nil {
			return nil, err
		}
		for _, method := range methods {
			clusters := method.Cluster(gridCounts)
			op := cluster.ToMassEdit("field", clusters, "")
			edits, correct := 0, 0
			if op != nil {
				for _, e := range op.Edits {
					for _, from := range e.From {
						edits++
						want := canonical[from]
						got := canonical[e.To]
						if got == "" {
							got = e.To
						}
						if want == got {
							correct++
						}
					}
				}
			}
			conf := metrics.ConfusionCounts{TP: correct, FP: edits - correct, FN: target - correct}
			replay := "n/a"
			if op != nil {
				ok, err := replayIdentical(op, grid)
				if err != nil {
					return nil, err
				}
				replay = fmt.Sprintf("%v", ok)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("x%.1f", scale),
				method.Name(),
				fmt.Sprintf("%d", len(clusters)),
				fmt.Sprintf("%d", edits),
				fmt.Sprintf("%.2f", conf.Precision()),
				fmt.Sprintf("%.2f", conf.Recall()),
				replay,
			})
		}
	}
	t.Notes = append(t.Notes,
		"precision: generated edits folding a raw form onto a form with the same ground-truth canonical",
		"recall: fraction of all messy raw forms correctly folded; replay: export->import->reapply is identical")
	return t, nil
}

// gridFromCorpus builds a one-column grid with each raw name appearing
// once per corpus entry.
func gridFromCorpus(corpus []workload.LabeledName) *table.Table {
	grid := table.MustNew("field")
	for _, ln := range corpus {
		// A fixed single-column schema cannot produce a width error.
		_ = grid.AppendRow(ln.Raw)
	}
	return grid
}

// replayIdentical exports the rule to JSON, re-imports it, applies both
// to clones of the grid, and compares.
func replayIdentical(op *refine.MassEdit, grid *table.Table) (bool, error) {
	data, err := refine.ExportJSON([]refine.Operation{op})
	if err != nil {
		return false, err
	}
	back, err := refine.ImportJSON(data)
	if err != nil {
		return false, err
	}
	a := grid.Clone()
	b := grid.Clone()
	if _, err := op.Apply(a); err != nil {
		return false, err
	}
	if _, err := back[0].Apply(b); err != nil {
		return false, err
	}
	return a.Equal(b), nil
}

// Figure5DatasetSummary reproduces the dataset-summary-page figure as a
// completeness audit over every published dataset.
func Figure5DatasetSummary(dir string, datasets int, seed int64) (*Table, error) {
	ctx, m, err := buildWrangled(dir, datasets, seed)
	if err != nil {
		return nil, err
	}
	truth := m.ByPath()
	var total, varsShown, exclShown, ctxShown, parentShown, rangesOK int
	var exclTotal, ctxTotal int
	for _, f := range ctx.Published.Snapshot().All() {
		total++
		sum := search.Summarize(f)
		d := truth[f.Path]
		shown := make(map[string]bool)
		for _, v := range sum.Searchable {
			shown[v.RawName] = true
		}
		for _, v := range sum.Excluded {
			shown[v.RawName] = true
		}
		allShown := true
		for _, vt := range d.Vars {
			if !shown[vt.Raw] {
				allShown = false
			}
		}
		if allShown {
			varsShown++
		}
		for _, vt := range d.Vars {
			if vt.Category == semdiv.CatExcessive {
				exclTotal++
				for _, v := range sum.Excluded {
					if v.RawName == vt.Raw {
						exclShown++
						break
					}
				}
			}
		}
		for _, v := range append(append([]search.SummaryVar{}, sum.Searchable...), sum.Excluded...) {
			if len(v.Contexts) > 0 {
				ctxShown++
			}
			if v.Parent != "" {
				parentShown++
			}
			if v.Range != "" && v.Count > 0 {
				rangesOK++
			}
		}
		ctxTotal += len(sum.Searchable) + len(sum.Excluded)

	}
	t := &Table{
		ID:     "F5",
		Title:  "Dataset summary pages: completeness audit",
		Header: []string{"measure", "value"},
		Rows: [][]string{
			{"datasets summarized", fmt.Sprintf("%d", total)},
			{"pages showing every harvested variable", fmt.Sprintf("%d/%d", varsShown, total)},
			{"excessive variables shown as excluded", fmt.Sprintf("%d/%d", exclShown, exclTotal)},
			{"variable lines with observed ranges", fmt.Sprintf("%d/%d", rangesOK, ctxTotal)},
			{"variable lines with context links", fmt.Sprintf("%d", ctxShown)},
			{"variable lines with hierarchy parents", fmt.Sprintf("%d", parentShown)},
		},
	}
	t.Notes = append(t.Notes, "summaries render from catalog features only; raw data never re-read")
	return t, nil
}

// AblationCuratorLoop reproduces curatorial activity 3: iterations of
// "inspect the residual, extend the synonym table, rerun" until the mess
// converges.
func AblationCuratorLoop(dir string, datasets int, seed int64, maxIters int) (*Table, error) {
	m, err := archive.Generate(dir, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		return nil, err
	}
	canonical := m.CanonicalFor()
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		return nil, err
	}
	ctx := core.NewContext(k, scan.Config{Root: dir})
	p := core.NewProcess("curator-loop", core.DefaultChain()...)

	t := &Table{
		ID:     "A1",
		Title:  "Curator improvement loop: coverage per iteration",
		Header: []string{"iteration", "unresolved", "coverage", "synonyms-added"},
	}
	for iter := 1; iter <= maxIters; iter++ {
		report, err := p.Run(ctx)
		if err != nil {
			return nil, err
		}
		// Curate: map every unresolved name using ground truth (the
		// curator knows the archive).
		added := 0
		cls := semdiv.NewClassifier(ctx.Knowledge)
		for _, vc := range ctx.Working.VariableNameCounts() {
			f := cls.Classify(vc.Value)
			if f.Category != semdiv.CatUnknown && f.Category != semdiv.CatAmbiguous {
				continue
			}
			canon := canonical[vc.Value]
			if canon == "" || canon == vc.Value {
				continue
			}
			if err := ctx.Knowledge.Synonyms.Add(canon, vc.Value); err == nil {
				added++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", iter),
			fmt.Sprintf("%d", report.MessAfter.UnresolvedNames),
			fmt.Sprintf("%.3f", report.MessAfter.OccurrenceCoverage),
			fmt.Sprintf("%d", added),
		})
		if report.MessAfter.UnresolvedNames == 0 || added == 0 {
			break
		}
	}
	t.Notes = append(t.Notes, "each iteration: run chain, add ground-truth synonyms for the residual, rerun")
	return t, nil
}

// AblationValidation injects one fault per check and verifies detection.
func AblationValidation(dir string, seed int64) (*Table, error) {
	ctx, m, err := buildWrangled(dir, 9, seed)
	if err != nil {
		return nil, err
	}
	k := ctx.Knowledge
	t := &Table{
		ID:     "A2",
		Title:  "Validation checks: fault injection",
		Header: []string{"fault", "check", "detected"},
	}
	injectAndCheck := func(fault string, checkName string, mutate func(c *catalog.Catalog), vctxMod func(v *validate.Context)) error {
		c := ctx.Working.Clone()
		if mutate != nil {
			mutate(c)
		}
		vctx := &validate.Context{Catalog: c, Knowledge: k, Units: ctx.Units}
		if vctxMod != nil {
			vctxMod(vctx)
		}
		report := validate.Run(vctx, validate.DefaultChecks()...)
		detected := false
		for _, f := range report.Findings {
			if f.Check == checkName {
				detected = true
				break
			}
		}
		t.Rows = append(t.Rows, []string{fault, checkName, fmt.Sprintf("%v", detected)})
		return nil
	}

	// Fault 1: a CSV dropped into a directory holding obs files. The
	// intruder lands beside an actual stations dataset so the directory
	// genuinely mixes types.
	var stationsDir string
	for _, d := range m.Datasets {
		if d.Source == "stations" {
			stationsDir = path.Dir(filepath.ToSlash(d.Path))
			break
		}
	}
	if stationsDir == "" {
		return nil, fmt.Errorf("experiments: archive has no stations datasets")
	}
	intruderPath := stationsDir + "/intruder.csv"
	if err := injectAndCheck("mixed file type in stations dir", "same-type-directory", func(c *catalog.Catalog) {
		f := &catalog.Feature{
			ID: catalog.IDForPath(intruderPath), Path: intruderPath,
			Source: "stations", Format: "csv",
			BBox:      geo.BBox{MinLat: 46, MinLon: -124, MaxLat: 46.1, MaxLon: -123.9},
			Time:      m.Datasets[0].Time,
			Variables: []catalog.VarFeature{{RawName: "salinity", Name: "salinity", Count: 1}},
		}
		_ = c.Upsert(f)
	}, nil); err != nil {
		return nil, err
	}
	// Fault 2: an uncovered variable name.
	if err := injectAndCheck("uncovered variable name", "synonym-coverage", func(c *catalog.Catalog) {
		c.MutateVariables(func(f *catalog.Feature) bool {
			f.Variables[0].Name = "zz_unintelligible_name"
			return true
		})
	}, nil); err != nil {
		return nil, err
	}
	// Fault 3: expected dataset missing.
	if err := injectAndCheck("expected dataset missing", "expected-datasets", nil, func(v *validate.Context) {
		v.ExpectedPaths = []string{"stations/2099/never.obs"}
	}); err != nil {
		return nil, err
	}
	// Fault 4: unknown unit string.
	if err := injectAndCheck("unknown unit string", "units-resolved", func(c *catalog.Catalog) {
		c.MutateVariables(func(f *catalog.Feature) bool {
			f.Variables[0].Unit = "cubits per fortnight"
			f.Variables[0].CanonicalUnit = ""
			return true
		})
	}, nil); err != nil {
		return nil, err
	}
	// Fault 5: physically implausible range.
	if err := injectAndCheck("implausible value range", "plausible-ranges", func(c *catalog.Catalog) {
		c.MutateVariables(func(f *catalog.Feature) bool {
			for i := range f.Variables {
				if f.Variables[i].Name == "salinity" {
					f.Variables[i].Range = geo.ValueRange{Min: 0, Max: 5000}
					return true
				}
			}
			return false
		})
	}, nil); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationScoring drops one query dimension at a time and measures the
// retrieval-quality impact — each dimension of the poster's ranked
// search must carry weight.
func AblationScoring(dir string, datasets, queries int, seed int64) (*Table, error) {
	ctx, m, err := buildWrangled(dir, datasets, seed)
	if err != nil {
		return nil, err
	}
	judged, err := workload.Queries(m, queries, seed+1, workload.DefaultRelevance(), false)
	if err != nil {
		return nil, err
	}
	s := search.New(ctx.Published, search.DefaultOptions())

	variants := []struct {
		name   string
		mutate func(q search.Query) search.Query
	}{
		{"full query (space+time+vars)", func(q search.Query) search.Query { return q }},
		{"no location", func(q search.Query) search.Query { q.Location = nil; return q }},
		{"no time", func(q search.Query) search.Query { q.Time = nil; return q }},
		{"no variables", func(q search.Query) search.Query { q.Terms = nil; return q }},
	}
	t := &Table{
		ID:     "A3",
		Title:  "Scoring ablation: drop one query dimension",
		Header: []string{"query form", "P@5", "NDCG@10"},
	}
	for _, v := range variants {
		var p5s, ndcgs []float64
		for _, j := range judged {
			res, err := s.Search(v.mutate(j.Query))
			if err != nil {
				return nil, err
			}
			ids := workload.RankedIDs(res)
			p5s = append(p5s, metrics.PrecisionAtK(ids, j.Relevant, 5))
			ndcgs = append(ndcgs, metrics.NDCGAtK(ids, j.Relevant, 10))
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%.3f", metrics.Mean(p5s)),
			fmt.Sprintf("%.3f", metrics.Mean(ndcgs)),
		})
	}
	t.Notes = append(t.Notes, "relevance requires variable+location+time, so every dropped dimension costs quality")
	return t, nil
}
