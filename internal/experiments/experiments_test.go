package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTable1ShapeHoldsTable1Claims(t *testing.T) {
	tab, err := Table1SemanticDiversity(t.TempDir(), 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (Table 1 categories)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		injected, _ := strconv.Atoi(row[2])
		if injected == 0 {
			t.Errorf("category %s never injected", row[0])
			continue
		}
		recall, _ := strconv.ParseFloat(row[4], 64)
		if recall < 0.5 {
			t.Errorf("category %s detection recall %.2f < 0.5", row[0], recall)
		}
		if row[5] != "n/a" {
			resolved, _ := strconv.ParseFloat(row[5], 64)
			if resolved < 0.5 {
				t.Errorf("category %s resolution %.2f < 0.5", row[0], resolved)
			}
		}
	}
	out := tab.String()
	if !strings.Contains(out, "T1") || !strings.Contains(out, "synonym") {
		t.Error("rendered table malformed")
	}
}

func TestFigure1WranglingImprovesRetrieval(t *testing.T) {
	tab, err := Figure1RankedSearch(t.TempDir(), t.TempDir(), 45, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string, col int) float64 {
		for _, r := range tab.Rows {
			if r[0] == name {
				v, _ := strconv.ParseFloat(r[col], 64)
				return v
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	rawR10 := get("raw catalog, exact match", 2)
	wrangledR10 := get("wrangled catalog", 2)
	if wrangledR10 <= rawR10 {
		t.Errorf("wrangling did not improve recall: raw %.3f vs wrangled %.3f", rawR10, wrangledR10)
	}
	if wrangledR10 < 0.8 {
		t.Errorf("wrangled recall = %.3f, want >= 0.8", wrangledR10)
	}
	// Index and linear scan agree on quality (exact top-K).
	idx := get("wrangled catalog", 3)
	lin := get("wrangled, linear scan", 3)
	if idx != lin {
		t.Errorf("index NDCG %.3f != linear %.3f", idx, lin)
	}
}

func TestFigure2FeaturesAreSmall(t *testing.T) {
	tab, err := Figure2CatalogBuild(
		[]string{t.TempDir(), t.TempDir()},
		[]int{15, 45}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		ratio, _ := strconv.ParseFloat(strings.TrimSuffix(r[3], "x"), 64)
		if ratio < 3 {
			t.Errorf("feature summarization ratio %.1f < 3x for %s datasets", ratio, r[0])
		}
	}
	if _, err := Figure2CatalogBuild([]string{t.TempDir()}, []int{1, 2}, 1); err == nil {
		t.Error("mismatched dirs/sizes accepted")
	}
}

func TestFigure3CoverageMonotone(t *testing.T) {
	tab, err := Figure3WranglingChain(t.TempDir(), 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, r := range tab.Rows {
		cov, _ := strconv.ParseFloat(r[5], 64)
		if cov < prev-1e-9 {
			t.Errorf("coverage decreased at stage %s: %.3f -> %.3f", r[0], prev, cov)
		}
		prev = cov
		if i == len(tab.Rows)-1 && cov < 0.9 {
			t.Errorf("final coverage %.3f < 0.9", cov)
		}
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "incremental rerun") {
		t.Error("rerun note missing")
	}
}

func TestFigure4DiscoveryShape(t *testing.T) {
	tab, err := Figure4Discovery(
		[]string{t.TempDir(), t.TempDir()},
		[]float64{0.5, 1.5}, 30, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 2 mess levels x 5 methods
		t.Fatalf("rows = %d, want 10", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[6] == "false" {
			t.Errorf("method %s at %s: rule replay not idempotent", r[1], r[0])
		}
		prec, _ := strconv.ParseFloat(r[4], 64)
		if edits, _ := strconv.Atoi(r[3]); edits > 0 && prec < 0.3 {
			t.Errorf("method %s at %s: precision %.2f unusably low", r[1], r[0], prec)
		}
	}
	if _, err := Figure4Discovery([]string{t.TempDir()}, []float64{1, 2}, 5, 1); err == nil {
		t.Error("mismatched dirs/scales accepted")
	}
}

func TestFigure5SummariesComplete(t *testing.T) {
	tab, err := Figure5DatasetSummary(t.TempDir(), 21, 17)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]string{}
	for _, r := range tab.Rows {
		rows[r[0]] = r[1]
	}
	full := rows["pages showing every harvested variable"]
	parts := strings.Split(full, "/")
	if len(parts) != 2 || parts[0] != parts[1] {
		t.Errorf("not every page complete: %s", full)
	}
	excl := rows["excessive variables shown as excluded"]
	parts = strings.Split(excl, "/")
	if len(parts) != 2 || parts[0] != parts[1] {
		t.Errorf("not every excessive variable excluded: %s", excl)
	}
}

func TestAblationCuratorLoopConverges(t *testing.T) {
	tab, err := AblationCuratorLoop(t.TempDir(), 30, 23, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no iterations")
	}
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	u0, _ := strconv.Atoi(first[1])
	uN, _ := strconv.Atoi(last[1])
	if uN > u0 {
		t.Errorf("unresolved grew across curator loop: %d -> %d", u0, uN)
	}
	covN, _ := strconv.ParseFloat(last[2], 64)
	if covN < 0.9 {
		t.Errorf("final coverage %.3f < 0.9", covN)
	}
}

func TestAblationValidationDetectsEveryFault(t *testing.T) {
	tab, err := AblationValidation(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 faults", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[2] != "true" {
			t.Errorf("fault %q not detected by %s", r[0], r[1])
		}
	}
}

func TestAblationScoringEveryDimensionMatters(t *testing.T) {
	tab, err := AblationScoring(t.TempDir(), 45, 25, 29)
	if err != nil {
		t.Fatal(err)
	}
	var full float64
	for _, r := range tab.Rows {
		ndcg, _ := strconv.ParseFloat(r[2], 64)
		if r[0] == "full query (space+time+vars)" {
			full = ndcg
		}
	}
	if full == 0 {
		t.Fatal("full-query row missing")
	}
	clearlyWorse := 0
	for _, r := range tab.Rows {
		if r[0] == "full query (space+time+vars)" {
			continue
		}
		ndcg, _ := strconv.ParseFloat(r[2], 64)
		// Statistical tolerance: a dropped dimension may be ~neutral on a
		// given workload, but must never clearly beat the full query.
		if ndcg > full+0.05 {
			t.Errorf("dropping a dimension clearly improved NDCG: %s = %.3f > full %.3f", r[0], ndcg, full)
		}
		if ndcg < full-0.01 {
			clearlyWorse++
		}
	}
	if clearlyWorse < 2 {
		t.Errorf("only %d dropped dimensions degraded NDCG; expected at least space and time to matter", clearlyWorse)
	}
}
