// Package experiments reproduces every exhibit of the poster as a
// measurable experiment: the Table-1 semantic-diversity taxonomy and the
// five figures, plus the ablations DESIGN.md calls out. Each runner
// returns a formatted table whose shape must satisfy the poster's
// qualitative claims; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/core"
	"metamess/internal/metrics"
	"metamess/internal/scan"
	"metamess/internal/search"
	"metamess/internal/semdiv"
	"metamess/internal/vocab"
	"metamess/internal/workload"
)

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// buildWrangled generates an archive, runs the full chain, and returns
// the context plus manifest.
func buildWrangled(dir string, datasets int, seed int64) (*core.Context, *archive.Manifest, error) {
	m, err := archive.Generate(dir, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		return nil, nil, err
	}
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		return nil, nil, err
	}
	ctx := core.NewContext(k, scan.Config{Root: dir})
	p := core.NewProcess("experiment", core.DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		return nil, nil, err
	}
	return ctx, m, nil
}

// buildRaw generates an archive and scans it with no wrangling at all:
// the baseline catalog whose variable names are the mess as harvested.
func buildRaw(dir string, datasets int, seed int64) (*catalog.Catalog, *archive.Manifest, error) {
	m, err := archive.Generate(dir, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		return nil, nil, err
	}
	c := catalog.New()
	if _, err := scan.New(scan.Config{Root: dir}).ScanInto(c); err != nil {
		return nil, nil, err
	}
	return c, m, nil
}

// Table1SemanticDiversity reproduces the poster's Table 1: inject every
// category at known rates, classify, and apply each category's approach.
// Columns: injected count, detection precision/recall, and the fraction
// of findings whose prescribed resolution succeeded against ground truth.
func Table1SemanticDiversity(dir string, datasets int, seed int64) (*Table, error) {
	cfg := archive.DefaultGenConfig(datasets, seed)
	cfg.Mess = archive.DefaultMess().Scale(1.5) // heavier mess: exercise every row
	m, err := archive.Generate(dir, cfg)
	if err != nil {
		return nil, err
	}
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		return nil, err
	}
	cls := semdiv.NewClassifier(k)
	corpus := workload.Corpus(m)

	type tally struct {
		injected int
		conf     metrics.ConfusionCounts
		resolved int
		resTotal int
	}
	tallies := make(map[semdiv.Category]*tally)
	for _, c := range semdiv.Categories() {
		tallies[c] = &tally{}
	}

	var findings []semdiv.Finding
	for _, ln := range corpus {
		f := cls.Classify(ln.Raw)
		findings = append(findings, f)
		if tl, ok := tallies[ln.Category]; ok {
			tl.injected++
			if f.Category == ln.Category {
				tl.conf.TP++
			} else {
				tl.conf.FN++
			}
		}
		if tl, ok := tallies[f.Category]; ok && f.Category != ln.Category {
			tl.conf.FP++
		}
	}
	plan := semdiv.Resolve(findings)
	queued := make(map[string]bool)
	for _, f := range plan.CuratorQueue {
		queued[f.RawName] = true
	}
	grouped := make(map[string]bool)
	for _, members := range plan.Groups {
		for _, m := range members {
			grouped[m] = true
		}
	}
	excluded := make(map[string]bool)
	for _, e := range plan.Exclusions {
		excluded[e] = true
	}
	for _, ln := range corpus {
		tl, ok := tallies[ln.Category]
		if !ok {
			continue
		}
		tl.resTotal++
		switch ln.Category {
		case semdiv.CatMinorVariation, semdiv.CatSynonym, semdiv.CatAbbreviation:
			if plan.Translations[ln.Raw] == ln.Canonical {
				tl.resolved++
			}
		case semdiv.CatExcessive:
			if excluded[ln.Raw] {
				tl.resolved++
			}
		case semdiv.CatAmbiguous:
			if queued[ln.Raw] {
				tl.resolved++ // exposed to the curator, per Table 1
			}
		case semdiv.CatSourceContext:
			if len(plan.ContextLinks[ln.Raw]) >= 2 {
				tl.resolved++
			}
		case semdiv.CatMultiLevel:
			if grouped[ln.Raw] {
				tl.resolved++
			}
		}
	}

	t := &Table{
		ID:     "T1",
		Title:  "Categories of semantic diversity: injection, detection, resolution",
		Header: []string{"category", "approach", "injected", "det-precision", "det-recall", "resolved"},
	}
	for _, c := range semdiv.Categories() {
		tl := tallies[c]
		resolved := "n/a"
		if tl.resTotal > 0 {
			resolved = fmt.Sprintf("%.2f", float64(tl.resolved)/float64(tl.resTotal))
		}
		t.Rows = append(t.Rows, []string{
			string(c), c.Approach(),
			fmt.Sprintf("%d", tl.injected),
			fmt.Sprintf("%.2f", tl.conf.Precision()),
			fmt.Sprintf("%.2f", tl.conf.Recall()),
			resolved,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("corpus: %d distinct raw names from %d datasets (mess x1.5, seed %d)",
			len(corpus), datasets, seed))
	return t, nil
}

// Figure1RankedSearch reproduces the search-interface figure as a
// retrieval-quality and latency experiment: the same judged queries run
// against the raw (unwrangled) catalog and the wrangled catalog, with
// and without the index. The poster's claim — wrangling stops messy
// names from hiding data — shows up as the recall gap.
func Figure1RankedSearch(dirRaw, dirWrangled string, datasets, queries int, seed int64) (*Table, error) {
	rawCat, m, err := buildRaw(dirRaw, datasets, seed)
	if err != nil {
		return nil, err
	}
	ctx, _, err := buildWrangled(dirWrangled, datasets, seed)
	if err != nil {
		return nil, err
	}
	// Quality workload: variable-only queries, so a dataset is only found
	// through its names — the axis wrangling improves. Latency workload:
	// full location+time+variable queries, the interactive case.
	varJudged, err := workload.VariableQueries(m, queries, seed+1, false)
	if err != nil {
		return nil, err
	}
	fullJudged, err := workload.Queries(m, queries, seed+2, workload.DefaultRelevance(), false)
	if err != nil {
		return nil, err
	}

	expander := search.NewKnowledgeExpander(ctx.Knowledge)
	configs := []struct {
		name string
		s    *search.Searcher
	}{
		{"raw catalog, exact match", search.New(rawCat, search.DefaultOptions())},
		{"raw catalog + expander", search.New(rawCat, withExpander(expander))},
		{"wrangled catalog", search.New(ctx.Published, search.DefaultOptions())},
		{"wrangled + expander", search.New(ctx.Published, withExpander(expander))},
		{"wrangled, linear scan", search.New(ctx.Published, linearScan())},
	}

	t := &Table{
		ID:     "F1",
		Title:  "Ranked search over location/time/variables (Data Near Here)",
		Header: []string{"configuration", "P@5", "recall", "NDCG@10", "mean-latency"},
	}
	for _, cfg := range configs {
		var p5s, recalls, ndcgs []float64
		for _, j := range varJudged {
			res, err := cfg.s.Search(j.Query)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", cfg.name, err)
			}
			ids := workload.RankedIDs(res)
			p5s = append(p5s, metrics.PrecisionAtK(ids, j.Relevant, 5))
			recalls = append(recalls, metrics.RecallAtK(ids, j.Relevant, len(ids)+len(j.Relevant)))
			ndcgs = append(ndcgs, metrics.NDCGAtK(ids, j.Relevant, 10))
		}
		var total time.Duration
		for _, j := range fullJudged {
			start := time.Now()
			if _, err := cfg.s.Search(j.Query); err != nil {
				return nil, fmt.Errorf("%s: %w", cfg.name, err)
			}
			total += time.Since(start)
		}
		t.Rows = append(t.Rows, []string{
			cfg.name,
			fmt.Sprintf("%.3f", metrics.Mean(p5s)),
			fmt.Sprintf("%.3f", metrics.Mean(recalls)),
			fmt.Sprintf("%.3f", metrics.Mean(ndcgs)),
			(total / time.Duration(len(fullJudged))).Round(time.Microsecond).String(),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d datasets; quality over %d variable-only queries (relevance: dataset carries the canonical variable); latency over %d full space+time+variable queries",
		datasets, len(varJudged), len(fullJudged)))
	return t, nil
}

func withExpander(e search.Expander) search.Options {
	o := search.DefaultOptions()
	o.Expander = e
	return o
}

func linearScan() search.Options {
	o := search.DefaultOptions()
	o.UseIndex = false
	return o
}

// Figure2CatalogBuild reproduces the IR-architecture figure as the
// scan-once-summarize measurement: throughput and the feature-vs-raw
// size ratio across archive sizes.
func Figure2CatalogBuild(dirs []string, sizes []int, seed int64) (*Table, error) {
	if len(dirs) != len(sizes) {
		return nil, fmt.Errorf("experiments: need one dir per size")
	}
	t := &Table{
		ID:     "F2",
		Title:  "Catalog build: scan once, summarize into features",
		Header: []string{"datasets", "raw-bytes", "feature-bytes", "ratio", "scan-time", "datasets/sec"},
	}
	for i, n := range sizes {
		dir := dirs[i]
		if _, err := archive.Generate(dir, archive.DefaultGenConfig(n, seed)); err != nil {
			return nil, err
		}
		c := catalog.New()
		start := time.Now()
		res, err := scan.New(scan.Config{Root: dir}).ScanInto(c)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		snapPath := dir + "/catalog.snapshot"
		if err := catalog.Save(snapPath, c); err != nil {
			return nil, err
		}
		featBytes, err := catalog.LogSize(snapPath)
		if err != nil {
			return nil, err
		}
		ratio := float64(res.Stats.BytesParsed) / float64(featBytes)
		persec := float64(res.Stats.Parsed) / elapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Stats.BytesParsed),
			fmt.Sprintf("%d", featBytes),
			fmt.Sprintf("%.1fx", ratio),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", persec),
		})
	}
	t.Notes = append(t.Notes, "features summarize datasets scanned once; ratio = raw/feature bytes")
	return t, nil
}
