package core

import (
	"strings"
	"testing"
)

func TestParseAndBuildProcessConfig(t *testing.T) {
	src := `{
	  "name": "cmop-nightly",
	  "chain": [
	    {"component": "scan-archive"},
	    {"component": "known-transforms"},
	    {"component": "discover-transforms", "methods": ["fingerprint", "ngram:2", "levenshtein:0.9"]},
	    {"component": "perform-discovered"},
	    {"component": "generate-hierarchies", "minGroupSize": 3},
	    {"component": "validate", "allowErrors": true},
	    {"component": "publish"}
	  ]
	}`
	cfg, err := ParseProcessConfig([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "cmop-nightly" || len(p.Components) != 7 {
		t.Fatalf("process = %q with %d components", p.Name, len(p.Components))
	}
	wantOrder := []string{
		"scan-archive", "known-transforms", "discover-transforms",
		"perform-discovered", "generate-hierarchies", "validate", "publish",
	}
	for i, c := range p.Components {
		if c.Name() != wantOrder[i] {
			t.Errorf("component %d = %s, want %s", i, c.Name(), wantOrder[i])
		}
	}
	dt := p.Components[2].(DiscoverTransforms)
	if len(dt.Methods) != 3 {
		t.Errorf("methods = %d", len(dt.Methods))
	}
	if dt.Methods[1].Name() != "ngram-fingerprint-2" {
		t.Errorf("method 1 = %s", dt.Methods[1].Name())
	}
	gh := p.Components[4].(GenerateHierarchies)
	if gh.Options.MinGroupSize != 3 {
		t.Errorf("minGroupSize = %d", gh.Options.MinGroupSize)
	}
}

func TestBuiltProcessRunsEndToEnd(t *testing.T) {
	ctx, m := newTestContext(t, 12, 31)
	cfg := DefaultProcessConfig("from-config")
	p, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	report, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Published.Len() != len(m.Datasets) {
		t.Errorf("published = %d, want %d", ctx.Published.Len(), len(m.Datasets))
	}
	if report.MessAfter.OccurrenceCoverage < 0.9 {
		t.Errorf("coverage = %.3f", report.MessAfter.OccurrenceCoverage)
	}
}

func TestProcessConfigRoundTrip(t *testing.T) {
	cfg := DefaultProcessConfig("rt")
	data, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProcessConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != cfg.Name || len(back.Chain) != len(cfg.Chain) {
		t.Errorf("round trip changed config: %+v", back)
	}
	if _, err := back.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestParseProcessConfigErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"chain": [{"component": "scan-archive"}]}`,            // no name
		`{"name": "x", "chain": []}`,                            // empty chain
		`{"name": "x", "chain": [{"component": "warp-drive"}]}`, // unknown component
		`{"name": "x", "chain": [{}]}`,                          // missing component
		`{"name": "x", "chain": [{"component": "discover-transforms", "methods": ["sorcery"]}]}`,
		`{"name": "x", "chain": [{"component": "discover-transforms", "methods": ["ngram:zero"]}]}`,
		`{"name": "x", "chain": [{"component": "discover-transforms", "methods": ["levenshtein:7"]}]}`,
	}
	for _, src := range cases {
		cfg, err := ParseProcessConfig([]byte(src))
		if err != nil {
			continue // parse-level rejection
		}
		if _, err := cfg.Build(); err == nil {
			t.Errorf("config %q should fail to build", src)
		}
	}
}

func TestMethodSpecDefaults(t *testing.T) {
	methods, err := parseMethods([]string{"ngram", "levenshtein", "jaro-winkler"})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(methods))
	for i, m := range methods {
		names[i] = m.Name()
	}
	want := "ngram-fingerprint-1 levenshtein jaro-winkler"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("defaults = %q, want %q", got, want)
	}
	// Empty spec list means nil (component default ladder).
	if ms, err := parseMethods(nil); err != nil || ms != nil {
		t.Errorf("nil specs = %v, %v", ms, err)
	}
}
