// Package core implements the poster's primary contribution: the
// metadata wrangling process. A Process is a chain of composable
// components — scan archive, perform known transformations, add external
// metadata, discover transformations, perform discovered
// transformations, generate hierarchies, validate, publish — run over a
// *working catalog* before its contents replace the published metadata
// catalog that search serves.
//
// The four curatorial activities map onto this package directly:
//
//  1. Creating a process from composable components: build a Process
//     from the Component implementations here (or from a ProcessConfig).
//  2. Running & rerunning: Process.Run is idempotent over unchanged
//     inputs and incremental end to end — the scan classifies the
//     archive churn into a Delta (added/changed/removed features), the
//     transformation and hierarchy components process only the dirty
//     features while the curated knowledge is unchanged (each
//     StepReport counts processed vs. skipped), and Publish pushes only
//     real differences into the published catalog, leaving the served
//     snapshot generation untouched when nothing changed.
//  3. Improving the process: mutate the Context's Knowledge (add synonym
//     entries, unit aliases, scan directories, hierarchy edits) between
//     runs. Any knowledge change moves the knowledge epoch, and the
//     next run falls back to a full reprocess — curated knowledge can
//     retroactively change features the scan saw as clean.
//  4. Validating results: the Validate component gates Publish.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/obs"
	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/semdiv"
	"metamess/internal/units"
	"metamess/internal/validate"
)

// Delta describes one run's archive churn, computed by ScanArchive and
// threaded through the chain: downstream components restrict their work
// to the dirty features when the curated knowledge is unchanged, and
// Publish pushes only real differences into the published catalog. The
// poster's "running & rerunning" loop thereby costs in proportion to
// what changed, not to how much has accumulated.
type Delta struct {
	// Added, Changed, and Removed are the feature IDs the scan
	// classified, each sorted.
	Added, Changed, Removed []string
	// Unchanged counts the features the scan skipped.
	Unchanged int
	// Epoch is the knowledge epoch the delta was computed at.
	Epoch uint64
	// Full forces components to reprocess every feature: set when the
	// curated knowledge moved since the last completed run (a synonym
	// add, curator decision, merged external table, or newly discovered
	// rule can retroactively change features the scan saw as clean).
	Full bool
}

// Empty reports whether the archive did not change at all. An empty,
// non-full delta lets every downstream component skip its feature pass
// and lets Publish leave the snapshot generation untouched.
func (d *Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Changed) == 0 && len(d.Removed) == 0
}

// Dirty returns the IDs needing reprocessing (added + changed), sorted.
func (d *Delta) Dirty() []string {
	out := make([]string, 0, len(d.Added)+len(d.Changed))
	out = append(out, d.Added...)
	out = append(out, d.Changed...)
	sort.Strings(out)
	return out
}

// Context carries the mutable state a chain threads through its
// components: the working catalog, the curated knowledge, the unit
// registry, and the rules discovered so far.
type Context struct {
	// Working is the working catalog components mutate.
	Working *catalog.Catalog
	// Published is the catalog search serves; only Publish touches it.
	Published *catalog.Catalog
	// Knowledge is the curated state (synonym table, abbreviations,
	// contexts, vocabulary). Curators improve it between runs.
	Knowledge *semdiv.Knowledge
	// Units resolves unit strings.
	Units *units.Registry
	// ScanConfig selects directories and file types.
	ScanConfig scan.Config
	// Connector, when set, replaces the filesystem walker as the scan
	// component's ingest source — a streaming tar/zip archive, an HTTP
	// object listing, or any other scan.Connector. The rest of the chain
	// (transforms, validation, publish, journal, replication) is
	// connector-agnostic: every source produces the same Delta shape.
	Connector scan.Connector
	// DiscoveredRules accumulates the mass edits produced by the
	// discovery component, applied by PerformDiscovered and exportable as
	// the poster's JSON rule files.
	DiscoveredRules []refine.Operation
	// PendingDecisions holds curator rulings applied by the next
	// KnownTransforms run.
	PendingDecisions []semdiv.Decision
	// ExpectedPaths parameterizes the expected-datasets validation check.
	ExpectedPaths []string
	// LastValidation holds the most recent validation report.
	LastValidation *validate.Report
	// Delta is the current run's churn, set by ScanArchive and read by
	// every delta-aware component downstream. Nil when no scan ran this
	// run (custom chains), which components treat as "process all".
	Delta *Delta
	// ForceFullReprocess disables delta-scoped processing: every run
	// walks the whole catalog as if the knowledge epoch had moved. The
	// escape hatch for operators who suspect drift, and the ablation the
	// equivalence property test compares the delta path against.
	ForceFullReprocess bool
	// Journal, when set, receives every publish delta (with its
	// generation stamp and the knowledge-epoch sidecar) after it is
	// applied — the durable write-ahead path. Publish fails if the
	// append does, so an acknowledged run is on disk.
	Journal PublishJournal
	// KnowledgeEpoch counts curated-knowledge changes. It moves when a
	// component or the facade calls NoteKnowledgeChange, and when
	// ScanArchive detects that the knowledge fingerprint drifted from
	// the last completed run (direct mutation of Knowledge). A run
	// whose epoch differs from the last completed run's reprocesses
	// everything.
	KnowledgeEpoch uint64
	// Trace, when set, receives write-path spans: Process.Run opens one
	// span per component under TraceSpan, and instrumented components
	// (Publish) nest their own stages beneath it. Nil disables tracing
	// at zero cost — every obs.Trace method is nil-safe.
	Trace *obs.Trace
	// TraceSpan is the parent span id component spans attach under.
	TraceSpan int32

	// Bookkeeping recorded by Publish at the end of a completed run.
	hasRun          bool
	lastRunEpoch    uint64
	lastKnowledgeFP uint64
	// pendingDirty carries dirty feature IDs across runs that failed
	// before Publish: the scan upserted their re-parsed (raw) state
	// into Working, so until a run publishes them the next scan — which
	// will see them stat-unchanged — must still treat them as dirty, or
	// the chain would skip their transforms and publish raw features.
	pendingDirty map[string]bool
	// lastNamesHash fingerprints the distinct-name set the hierarchy
	// generator last processed: taxonomy grouping is global over names,
	// so parents may only be patched incrementally while the name set
	// is stable.
	lastNamesHash uint64
}

// NoteKnowledgeChange records that the curated knowledge (synonym
// table, decisions, vocabulary, discovered rules) changed, forcing the
// next run — or, mid-run, the remaining components — to reprocess every
// feature instead of only the scan delta.
func (c *Context) NoteKnowledgeChange() {
	c.KnowledgeEpoch++
	if c.Delta != nil {
		c.Delta.Full = true
	}
}

// fullRun reports whether components must ignore the delta and process
// the whole catalog: no delta (custom chain without a scan), the delta
// marked full outright, or the live knowledge epoch having moved past
// the epoch the delta was scoped at (a mid-run knowledge change means
// the dirty set no longer bounds what needs reprocessing).
func (c *Context) fullRun() bool {
	return c.Delta == nil || c.Delta.Full || c.KnowledgeEpoch != c.Delta.Epoch
}

// knowledgeFingerprint hashes the curated knowledge's observable state
// — the semdiv knowledge base, the unit registry's aliases and symbols,
// and the number of undecided curator rulings. ScanArchive compares it
// against the last completed run's to catch curation mutated behind the
// Context's back (tests and curator tools edit Knowledge and Units
// directly), and Publish re-records it so a mid-run merge is not
// mistaken for a fresh curator edit on the next run.
func knowledgeFingerprint(k *semdiv.Knowledge, reg *units.Registry, pendingDecisions int) uint64 {
	h := fnv.New64a()
	w := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	w(fmt.Sprintf("pending=%d", pendingDecisions))
	if reg != nil {
		w("units")
		w(reg.Symbols()...)
		w(reg.Aliases()...)
	}
	if k == nil {
		return h.Sum64()
	}
	for _, pref := range k.Synonyms.PreferredNames() {
		w("syn", pref)
		w(k.Synonyms.AlternatesOf(pref)...)
	}
	abbrevs := make([]string, 0, len(k.Abbrevs))
	for a, c := range k.Abbrevs {
		abbrevs = append(abbrevs, a+"="+c)
	}
	sort.Strings(abbrevs)
	w("abbrevs")
	w(abbrevs...)
	w("prefixes")
	w(k.ExcessivePrefixes...)
	w("suffixes")
	w(k.ExcessiveSuffixes...)
	amb := make([]string, 0, len(k.Ambiguous))
	for a, opts := range k.Ambiguous {
		amb = append(amb, a+"="+strings.Join(opts, ","))
	}
	sort.Strings(amb)
	w("ambiguous")
	w(amb...)
	for _, v := range k.Vocabulary {
		w("vocab", v.Name, v.Base, v.Context, v.Unit)
		w(v.Synonyms...)
		w(v.Abbrevs...)
	}
	if k.Contexts != nil {
		for _, name := range k.Contexts.Names() {
			if tax, ok := k.Contexts.Get(name); ok {
				w("context", name)
				w(tax.Menu(0)...)
			}
		}
	}
	return h.Sum64()
}

// namesHash fingerprints a sorted distinct-name set.
func namesHash(names []string) uint64 {
	h := fnv.New64a()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// NewContext builds a context with empty catalogs at the default
// snapshot shard count (one shard per schedulable CPU).
func NewContext(k *semdiv.Knowledge, scanCfg scan.Config) *Context {
	return NewContextSharded(k, scanCfg, 0)
}

// NewContextSharded is NewContext with an explicit snapshot shard count
// for both catalogs (0 or negative = default). The published catalog's
// count decides how publish patching and search scatter; the working
// catalog matches it so a wholesale ReplaceAll keeps the partition.
func NewContextSharded(k *semdiv.Knowledge, scanCfg scan.Config, shards int) *Context {
	return &Context{
		Working:    catalog.NewSharded(shards),
		Published:  catalog.NewSharded(shards),
		Knowledge:  k,
		Units:      units.NewRegistry(),
		ScanConfig: scanCfg,
	}
}

// Component is one composable step of a metadata processing chain.
type Component interface {
	// Name identifies the component in reports and configs.
	Name() string
	// Run executes the step against the context.
	Run(ctx *Context) (StepReport, error)
}

// StepReport summarizes one component execution.
type StepReport struct {
	Component string         `json:"component"`
	Duration  time.Duration  `json:"duration"`
	Counters  map[string]int `json:"counters,omitempty"`
	Notes     []string       `json:"notes,omitempty"`
	// MessAfter snapshots the mess metric after the step.
	MessAfter MessReport `json:"messAfter"`
}

// RunReport summarizes a whole chain run.
type RunReport struct {
	Process    string        `json:"process"`
	Steps      []StepReport  `json:"steps"`
	Duration   time.Duration `json:"duration"`
	MessBefore MessReport    `json:"messBefore"`
	MessAfter  MessReport    `json:"messAfter"`
}

// Process is a named chain of components — the poster's "metadata
// processing chain".
type Process struct {
	Name       string
	Components []Component
	// History records every run for provenance.
	History []*RunReport
}

// NewProcess assembles a process.
func NewProcess(name string, components ...Component) *Process {
	return &Process{Name: name, Components: components}
}

// Run executes the chain in order, stopping at the first component
// error. The report records the mess metric before and after every
// step. The metric is memoized on (catalog generation, knowledge
// epoch): a step that mutated neither — validate, publish, an
// incremental no-op — reuses the previous computation instead of
// re-classifying every variable name in the catalog, which matters on
// the delta-scoped reruns whose whole point is to not walk everything.
func (p *Process) Run(ctx *Context) (*RunReport, error) {
	start := time.Now()
	var memo struct {
		valid bool
		gen   uint64
		epoch uint64
		rep   MessReport
	}
	mess := func() MessReport {
		gen := ctx.Working.Generation()
		if memo.valid && memo.gen == gen && memo.epoch == ctx.KnowledgeEpoch {
			return memo.rep
		}
		memo.valid = true
		memo.gen = gen
		memo.epoch = ctx.KnowledgeEpoch
		memo.rep = Mess(ctx.Working, ctx.Knowledge)
		return memo.rep
	}
	report := &RunReport{
		Process:    p.Name,
		MessBefore: mess(),
	}
	for _, comp := range p.Components {
		name := comp.Name()
		// Component spans nest under the run's span; instrumented
		// components (Publish) hang their own stages off TraceSpan, so
		// it is re-pointed at this component for the duration of its
		// Run and restored after.
		sid := ctx.Trace.Start(ctx.TraceSpan, name)
		saved := ctx.TraceSpan
		if sid >= 0 {
			ctx.TraceSpan = sid
		}
		stepStart := time.Now()
		step, err := comp.Run(ctx)
		dur := time.Since(stepStart)
		ctx.TraceSpan = saved
		ctx.Trace.End(sid)
		observeWrangleStage(name, dur)
		if err != nil {
			wrangleFailures.Inc()
			return report, fmt.Errorf("core: component %s: %w", name, err)
		}
		step.Component = name
		step.Duration = dur
		step.MessAfter = mess()
		report.Steps = append(report.Steps, step)
	}
	report.Duration = time.Since(start)
	report.MessAfter = mess()
	p.History = append(p.History, report)
	wrangleRuns.Inc()
	return report, nil
}

// MessReport quantifies "the mess": how far the working catalog's
// variable names are from the canonical vocabulary.
type MessReport struct {
	// DistinctNames counts distinct current variable names.
	DistinctNames int `json:"distinctNames"`
	// CanonicalNames counts distinct names that are exactly canonical.
	CanonicalNames int `json:"canonicalNames"`
	// ExcludedNames counts distinct names marked excluded.
	ExcludedNames int `json:"excludedNames"`
	// GroupedNames counts distinct multi-level names resolved by
	// hierarchy grouping (kept under a parent, per Table 1).
	GroupedNames int `json:"groupedNames"`
	// UnresolvedNames counts distinct names that are neither canonical,
	// excluded, nor grouped — the mess that's left.
	UnresolvedNames int `json:"unresolvedNames"`
	// OccurrenceCoverage is the fraction of variable occurrences whose
	// name is canonical, excluded, or hierarchy-grouped (i.e. fully
	// wrangled), in [0,1].
	OccurrenceCoverage float64 `json:"occurrenceCoverage"`
}

// Mess computes the metric for a catalog against a knowledge base.
func Mess(c *catalog.Catalog, k *semdiv.Knowledge) MessReport {
	r := MessReport{}
	if c == nil || k == nil {
		return r
	}
	cls := semdiv.NewClassifier(k)
	excludedNames := make(map[string]bool)
	groupedNames := make(map[string]bool)
	counts := make(map[string]int)
	// One lock-free-of-clones pass over the live features: the metric
	// runs after every chain step, so it must not force a snapshot
	// rebuild (or a catalog copy) per step.
	c.ForEach(func(f *catalog.Feature) {
		for _, v := range f.Variables {
			counts[v.Name]++
			if v.Excluded {
				excludedNames[v.Name] = true
			}
			if v.Parent != "" {
				groupedNames[v.Name] = true
			}
		}
	})
	totalOcc, wrangledOcc := 0, 0
	for name, count := range counts {
		r.DistinctNames++
		totalOcc += count
		f := cls.Classify(name)
		switch {
		case f.Category == semdiv.CatClean:
			r.CanonicalNames++
			wrangledOcc += count
		case excludedNames[name]:
			r.ExcludedNames++
			wrangledOcc += count
		case f.Category == semdiv.CatMultiLevel && groupedNames[name]:
			r.GroupedNames++
			wrangledOcc += count
		default:
			r.UnresolvedNames++
		}
	}
	if totalOcc > 0 {
		r.OccurrenceCoverage = float64(wrangledOcc) / float64(totalOcc)
	}
	return r
}
