// Package core implements the poster's primary contribution: the
// metadata wrangling process. A Process is a chain of composable
// components — scan archive, perform known transformations, add external
// metadata, discover transformations, perform discovered
// transformations, generate hierarchies, validate, publish — run over a
// *working catalog* before its contents replace the published metadata
// catalog that search serves.
//
// The four curatorial activities map onto this package directly:
//
//  1. Creating a process from composable components: build a Process
//     from the Component implementations here (or from a ProcessConfig).
//  2. Running & rerunning: Process.Run is idempotent over unchanged
//     inputs and incremental over re-scans.
//  3. Improving the process: mutate the Context's Knowledge (add synonym
//     entries, unit aliases, scan directories, hierarchy edits) between
//     runs.
//  4. Validating results: the Validate component gates Publish.
package core

import (
	"fmt"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/semdiv"
	"metamess/internal/units"
	"metamess/internal/validate"
)

// Context carries the mutable state a chain threads through its
// components: the working catalog, the curated knowledge, the unit
// registry, and the rules discovered so far.
type Context struct {
	// Working is the working catalog components mutate.
	Working *catalog.Catalog
	// Published is the catalog search serves; only Publish touches it.
	Published *catalog.Catalog
	// Knowledge is the curated state (synonym table, abbreviations,
	// contexts, vocabulary). Curators improve it between runs.
	Knowledge *semdiv.Knowledge
	// Units resolves unit strings.
	Units *units.Registry
	// ScanConfig selects directories and file types.
	ScanConfig scan.Config
	// DiscoveredRules accumulates the mass edits produced by the
	// discovery component, applied by PerformDiscovered and exportable as
	// the poster's JSON rule files.
	DiscoveredRules []refine.Operation
	// PendingDecisions holds curator rulings applied by the next
	// KnownTransforms run.
	PendingDecisions []semdiv.Decision
	// ExpectedPaths parameterizes the expected-datasets validation check.
	ExpectedPaths []string
	// LastValidation holds the most recent validation report.
	LastValidation *validate.Report
}

// NewContext builds a context with empty catalogs.
func NewContext(k *semdiv.Knowledge, scanCfg scan.Config) *Context {
	return &Context{
		Working:    catalog.New(),
		Published:  catalog.New(),
		Knowledge:  k,
		Units:      units.NewRegistry(),
		ScanConfig: scanCfg,
	}
}

// Component is one composable step of a metadata processing chain.
type Component interface {
	// Name identifies the component in reports and configs.
	Name() string
	// Run executes the step against the context.
	Run(ctx *Context) (StepReport, error)
}

// StepReport summarizes one component execution.
type StepReport struct {
	Component string         `json:"component"`
	Duration  time.Duration  `json:"duration"`
	Counters  map[string]int `json:"counters,omitempty"`
	Notes     []string       `json:"notes,omitempty"`
	// MessAfter snapshots the mess metric after the step.
	MessAfter MessReport `json:"messAfter"`
}

// RunReport summarizes a whole chain run.
type RunReport struct {
	Process    string        `json:"process"`
	Steps      []StepReport  `json:"steps"`
	Duration   time.Duration `json:"duration"`
	MessBefore MessReport    `json:"messBefore"`
	MessAfter  MessReport    `json:"messAfter"`
}

// Process is a named chain of components — the poster's "metadata
// processing chain".
type Process struct {
	Name       string
	Components []Component
	// History records every run for provenance.
	History []*RunReport
}

// NewProcess assembles a process.
func NewProcess(name string, components ...Component) *Process {
	return &Process{Name: name, Components: components}
}

// Run executes the chain in order, stopping at the first component
// error. The report records the mess metric before and after every step.
func (p *Process) Run(ctx *Context) (*RunReport, error) {
	start := time.Now()
	report := &RunReport{
		Process:    p.Name,
		MessBefore: Mess(ctx.Working, ctx.Knowledge),
	}
	for _, comp := range p.Components {
		stepStart := time.Now()
		step, err := comp.Run(ctx)
		if err != nil {
			return report, fmt.Errorf("core: component %s: %w", comp.Name(), err)
		}
		step.Component = comp.Name()
		step.Duration = time.Since(stepStart)
		step.MessAfter = Mess(ctx.Working, ctx.Knowledge)
		report.Steps = append(report.Steps, step)
	}
	report.Duration = time.Since(start)
	report.MessAfter = Mess(ctx.Working, ctx.Knowledge)
	p.History = append(p.History, report)
	return report, nil
}

// MessReport quantifies "the mess": how far the working catalog's
// variable names are from the canonical vocabulary.
type MessReport struct {
	// DistinctNames counts distinct current variable names.
	DistinctNames int `json:"distinctNames"`
	// CanonicalNames counts distinct names that are exactly canonical.
	CanonicalNames int `json:"canonicalNames"`
	// ExcludedNames counts distinct names marked excluded.
	ExcludedNames int `json:"excludedNames"`
	// GroupedNames counts distinct multi-level names resolved by
	// hierarchy grouping (kept under a parent, per Table 1).
	GroupedNames int `json:"groupedNames"`
	// UnresolvedNames counts distinct names that are neither canonical,
	// excluded, nor grouped — the mess that's left.
	UnresolvedNames int `json:"unresolvedNames"`
	// OccurrenceCoverage is the fraction of variable occurrences whose
	// name is canonical, excluded, or hierarchy-grouped (i.e. fully
	// wrangled), in [0,1].
	OccurrenceCoverage float64 `json:"occurrenceCoverage"`
}

// Mess computes the metric for a catalog against a knowledge base.
func Mess(c *catalog.Catalog, k *semdiv.Knowledge) MessReport {
	r := MessReport{}
	if c == nil || k == nil {
		return r
	}
	cls := semdiv.NewClassifier(k)
	excludedNames := make(map[string]bool)
	groupedNames := make(map[string]bool)
	// Read-only pass: the shared snapshot avoids cloning the catalog
	// once per chain step.
	for _, f := range c.Snapshot().All() {
		for _, v := range f.Variables {
			if v.Excluded {
				excludedNames[v.Name] = true
			}
			if v.Parent != "" {
				groupedNames[v.Name] = true
			}
		}
	}
	totalOcc, wrangledOcc := 0, 0
	for _, vc := range c.VariableNameCounts() {
		r.DistinctNames++
		totalOcc += vc.Count
		f := cls.Classify(vc.Value)
		switch {
		case f.Category == semdiv.CatClean:
			r.CanonicalNames++
			wrangledOcc += vc.Count
		case excludedNames[vc.Value]:
			r.ExcludedNames++
			wrangledOcc += vc.Count
		case f.Category == semdiv.CatMultiLevel && groupedNames[vc.Value]:
			r.GroupedNames++
			wrangledOcc += vc.Count
		default:
			r.UnresolvedNames++
		}
	}
	if totalOcc > 0 {
		r.OccurrenceCoverage = float64(wrangledOcc) / float64(totalOcc)
	}
	return r
}
