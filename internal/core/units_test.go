package core

import (
	"math"
	"testing"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
	"metamess/internal/scan"
	"metamess/internal/semdiv"
	"metamess/internal/vocab"
)

// fahrenheitFeature fabricates a dataset whose temperature was recorded
// in degF, the way a legacy instrument would report it.
func fahrenheitFeature(path string) *catalog.Feature {
	return &catalog.Feature{
		ID:     catalog.IDForPath(path),
		Path:   path,
		Source: "stations",
		Format: "obs",
		BBox:   geo.BBox{MinLat: 46, MinLon: -124, MaxLat: 46.1, MaxLon: -123.9},
		Time: geo.NewTimeRange(
			time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC),
			time.Date(2010, 6, 2, 0, 0, 0, 0, time.UTC)),
		Variables: []catalog.VarFeature{
			{
				RawName: "water_temperature", Name: "water_temperature",
				Unit:  "F",
				Range: geo.ValueRange{Min: 41, Max: 50}, // 5..10 degC
				Count: 100,
			},
			{
				RawName: "wind_speed", Name: "wind_speed",
				Unit:  "cm/s",
				Range: geo.ValueRange{Min: 100, Max: 900}, // 1..9 m/s
				Count: 100,
			},
			{
				RawName: "salinity", Name: "salinity",
				Unit:  "ppt", // identity alias of PSU's family sibling g/kg
				Range: geo.ValueRange{Min: 5, Max: 30},
				Count: 100,
			},
		},
	}
}

func TestKnownTransformsConvertsUnits(t *testing.T) {
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(k, scan.Config{Root: t.TempDir()})
	f := fahrenheitFeature("stations/2010/legacy.obs")
	if err := ctx.Working.Upsert(f); err != nil {
		t.Fatal(err)
	}
	step, err := (KnownTransforms{}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if step.Counters["unitsConverted"] < 2 {
		t.Errorf("unitsConverted = %d, want >= 2 (degF and cm/s)", step.Counters["unitsConverted"])
	}
	got, _ := ctx.Working.Get(f.ID)

	temp, ok := got.Variable("water_temperature")
	if !ok {
		t.Fatal("temperature variable missing")
	}
	if temp.CanonicalUnit != "degC" {
		t.Errorf("temperature canonical unit = %q, want degC", temp.CanonicalUnit)
	}
	if math.Abs(temp.Range.Min-5) > 1e-9 || math.Abs(temp.Range.Max-10) > 1e-9 {
		t.Errorf("temperature range = %v, want [5..10] degC", temp.Range)
	}

	wind, _ := got.Variable("wind_speed")
	if wind.CanonicalUnit != "m/s" {
		t.Errorf("wind canonical unit = %q, want m/s", wind.CanonicalUnit)
	}
	if math.Abs(wind.Range.Min-1) > 1e-9 || math.Abs(wind.Range.Max-9) > 1e-9 {
		t.Errorf("wind range = %v, want [1..9] m/s", wind.Range)
	}

	// ppt resolves to g/kg; salinity's vocab unit is PSU (same family,
	// identity scale), so values are unchanged but the unit is rewritten.
	sal, _ := got.Variable("salinity")
	if sal.CanonicalUnit != "PSU" {
		t.Errorf("salinity canonical unit = %q, want PSU", sal.CanonicalUnit)
	}
	if sal.Range.Min != 5 || sal.Range.Max != 30 {
		t.Errorf("salinity range = %v, want unchanged [5..30]", sal.Range)
	}

	// Raw unit strings are preserved for provenance.
	if temp.Unit != "F" || wind.Unit != "cm/s" {
		t.Error("raw unit strings lost")
	}
}

func TestConvertedRangesPassPlausibility(t *testing.T) {
	// 41..50 degF is implausible as a degC reading; after conversion the
	// plausibility check must be clean — the point of converting.
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(k, scan.Config{Root: t.TempDir()})
	if err := ctx.Working.Upsert(fahrenheitFeature("stations/2010/legacy.obs")); err != nil {
		t.Fatal(err)
	}
	if _, err := (KnownTransforms{}).Run(ctx); err != nil {
		t.Fatal(err)
	}
	step, err := (Validate{}).Run(ctx)
	if err != nil {
		t.Fatalf("validation after conversion failed: %v (notes: %v)", err, step.Notes)
	}
	if step.Counters["errors"] != 0 {
		t.Errorf("validation errors = %d, notes: %v", step.Counters["errors"], step.Notes)
	}
}

func TestConversionIdempotentAcrossReruns(t *testing.T) {
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(k, scan.Config{Root: t.TempDir()})
	if err := ctx.Working.Upsert(fahrenheitFeature("stations/2010/legacy.obs")); err != nil {
		t.Fatal(err)
	}
	if _, err := (KnownTransforms{}).Run(ctx); err != nil {
		t.Fatal(err)
	}
	first, _ := ctx.Working.Get(catalog.IDForPath("stations/2010/legacy.obs"))
	// Rerunning must not double-convert (CanonicalUnit marks done).
	step, err := (KnownTransforms{}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if step.Counters["unitsConverted"] != 0 {
		t.Errorf("rerun converted %d units, want 0", step.Counters["unitsConverted"])
	}
	second, _ := ctx.Working.Get(catalog.IDForPath("stations/2010/legacy.obs"))
	for i := range first.Variables {
		if first.Variables[i].Range != second.Variables[i].Range {
			t.Errorf("variable %s range changed on rerun: %v -> %v",
				first.Variables[i].Name, first.Variables[i].Range, second.Variables[i].Range)
		}
	}
}
