package core

import (
	"fmt"
	"os"
	"sort"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/cluster"
	"metamess/internal/geo"
	"metamess/internal/hierarchy"
	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/semdiv"
	"metamess/internal/synonym"
	"metamess/internal/table"
	"metamess/internal/validate"
)

// ScanArchive is the chain's first component: walk the configured
// directories (in parallel), upsert a feature per added or changed
// dataset into the working catalog, retract vanished ones, and record
// the resulting Delta on the context for every downstream component.
type ScanArchive struct{}

// Name implements Component.
func (ScanArchive) Name() string { return "scan-archive" }

// Run implements Component.
func (ScanArchive) Run(ctx *Context) (StepReport, error) {
	// The previous run's delta is spent; drop it before epoch checks so
	// a knowledge bump cannot scribble on stale state.
	ctx.Delta = nil
	// Catch knowledge mutated behind the Context's back (curator tools
	// and tests write Knowledge directly) plus undecided rulings: both
	// can retroactively re-resolve names in features the scan will
	// report as unchanged.
	if fp := knowledgeFingerprint(ctx.Knowledge, ctx.Units, len(ctx.PendingDecisions)); ctx.hasRun && fp != ctx.lastKnowledgeFP {
		ctx.KnowledgeEpoch++
	}
	conn := ctx.Connector
	if conn == nil {
		conn = scan.New(ctx.ScanConfig)
	}
	res, err := conn.ScanInto(ctx.Working)
	if err != nil {
		return StepReport{}, err
	}
	ctx.Delta = &Delta{
		Added:     res.Added,
		Changed:   res.Changed,
		Removed:   res.Removed,
		Unchanged: res.Stats.SkippedUnchanged,
		Epoch:     ctx.KnowledgeEpoch,
		Full:      !ctx.hasRun || ctx.KnowledgeEpoch != ctx.lastRunEpoch || ctx.ForceFullReprocess,
	}
	// Fold in dirty IDs stranded by runs that aborted before Publish:
	// their re-parsed raw state sits in Working and the scan just
	// re-classified them as unchanged.
	carried := 0
	if len(ctx.pendingDirty) > 0 {
		// A stranded ID whose file has since vanished is in Removed (and
		// already deleted from Working) — it is no longer dirty, just gone.
		settled := make(map[string]bool, len(ctx.Delta.Added)+len(ctx.Delta.Changed)+len(ctx.Delta.Removed))
		for _, id := range ctx.Delta.Added {
			settled[id] = true
		}
		for _, id := range ctx.Delta.Changed {
			settled[id] = true
		}
		for _, id := range ctx.Delta.Removed {
			settled[id] = true
			delete(ctx.pendingDirty, id)
		}
		for id := range ctx.pendingDirty {
			if !settled[id] {
				ctx.Delta.Changed = append(ctx.Delta.Changed, id)
				carried++
			}
		}
		sort.Strings(ctx.Delta.Changed)
	}
	// Everything dirty this run stays pending until a Publish lands.
	if ctx.pendingDirty == nil {
		ctx.pendingDirty = make(map[string]bool)
	}
	for _, id := range ctx.Delta.Dirty() {
		ctx.pendingDirty[id] = true
	}
	step := StepReport{Counters: map[string]int{
		"filesSeen":        res.Stats.FilesSeen,
		"parsed":           res.Stats.Parsed,
		"skippedUnchanged": res.Stats.SkippedUnchanged,
		"hashVerified":     res.Stats.HashVerified,
		"failed":           res.Stats.Failed,
		"added":            len(res.Added),
		"changed":          len(res.Changed),
		"removed":          len(res.Removed),
		"carriedOver":      carried,
	}}
	if ctx.Delta.Full {
		step.Counters["fullReprocess"] = 1
	}
	for _, e := range res.Errors {
		step.Notes = append(step.Notes, e.Error())
	}
	return step, nil
}

// KnownTransforms performs the "perform known transformations"
// component: translate names the curated knowledge already understands
// (synonyms, abbreviations, minor variations, single-context bases),
// mark excessive variables as excluded, canonicalize units, and fold in
// any pending curator decisions.
type KnownTransforms struct{}

// Name implements Component.
func (KnownTransforms) Name() string { return "known-transforms" }

// Run implements Component.
func (KnownTransforms) Run(ctx *Context) (StepReport, error) {
	cls := semdiv.NewClassifier(ctx.Knowledge)
	counts := ctx.Working.VariableNameCounts()
	names := make([]string, len(counts))
	for i, vc := range counts {
		names[i] = vc.Value
	}
	plan := semdiv.Resolve(cls.ClassifyAll(names))
	if len(ctx.PendingDecisions) > 0 {
		if err := plan.ApplyDecisions(ctx.PendingDecisions); err != nil {
			return StepReport{}, err
		}
		ctx.PendingDecisions = nil
		// Decisions are knowledge: one may have landed after ScanArchive's
		// fingerprint check (a curator racing the background rewrangler),
		// and its translations must reach every feature — not just the
		// scan delta — before this run consumes it.
		ctx.NoteKnowledgeChange()
	}

	// The plan is global (classification is per-name, so it is cheap to
	// compute over every distinct name), but with stable knowledge the
	// non-dirty features are already fixed points of it: only the scan
	// delta needs the feature pass.
	full := ctx.fullRun()
	var dirty []string
	if !full {
		dirty = ctx.Delta.Dirty()
	}
	processed := ctx.Working.Len()
	if !full {
		processed = len(dirty)
	}

	step := StepReport{Counters: map[string]int{
		"translations":      len(plan.Translations),
		"exclusions":        len(plan.Exclusions),
		"curatorQueue":      len(plan.CuratorQueue),
		"featuresProcessed": processed,
		"featuresSkipped":   ctx.Working.Len() - processed,
	}}
	for _, f := range plan.CuratorQueue {
		step.Notes = append(step.Notes, fmt.Sprintf("curator: %q is %s (%s)", f.RawName, f.Category, f.Evidence))
	}
	if !full && len(dirty) == 0 {
		return step, nil
	}

	// Translations run through the refine grid so the rule is auditable.
	// An incremental run extracts (and writes back) only the dirty
	// features' rows.
	if op := plan.TranslationOp("field"); op != nil {
		var grid *table.Table
		if full {
			grid = ctx.Working.ToTable()
		} else {
			grid = ctx.Working.ToTableOf(dirty)
		}
		if _, err := op.Apply(grid); err != nil {
			return StepReport{}, err
		}
		changed, err := ctx.Working.ApplyTable(grid)
		if err != nil {
			return StepReport{}, err
		}
		step.Counters["datasetsChanged"] = changed
	}

	// Exclusions and unit canonicalization mutate features directly. A
	// variable harvested in a different unit than its vocabulary entry
	// prescribes (temperatures in degF, speeds in cm/s) has its observed
	// range converted into the variable's canonical unit, so range
	// queries and plausibility checks compare like with like.
	excluded := make(map[string]bool, len(plan.Exclusions))
	for _, e := range plan.Exclusions {
		excluded[e] = true
	}
	vocabUnit := make(map[string]string, len(ctx.Knowledge.Vocabulary))
	for _, cv := range ctx.Knowledge.Vocabulary {
		vocabUnit[cv.Name] = cv.Unit
	}
	unitMiss := make(map[string]bool)
	marked, converted := 0, 0
	mutate := func(f *catalog.Feature) bool {
		changed := false
		for i := range f.Variables {
			v := &f.Variables[i]
			if excluded[v.Name] && !v.Excluded {
				v.Excluded = true
				marked++
				changed = true
			}
			if v.Unit != "" && v.CanonicalUnit == "" {
				u, ok := ctx.Units.Lookup(v.Unit)
				if !ok {
					unitMiss[v.Unit] = true
					continue
				}
				target := vocabUnit[v.Name]
				if target == "" || target == u.Symbol || v.Count == 0 {
					// Same unit (or no vocabulary entry): just record the
					// resolved symbol, values need no conversion.
					v.CanonicalUnit = u.Symbol
					changed = true
					continue
				}
				lo, err1 := ctx.Units.Convert(v.Range.Min, v.Unit, target)
				hi, err2 := ctx.Units.Convert(v.Range.Max, v.Unit, target)
				if err1 != nil || err2 != nil {
					// Cross-family surprise: keep the resolved symbol and
					// leave values alone for the curator to inspect.
					v.CanonicalUnit = u.Symbol
					changed = true
					continue
				}
				v.Range = geo.NewValueRange(lo, hi)
				v.CanonicalUnit = target
				converted++
				changed = true
			}
		}
		return changed
	}
	if full {
		ctx.Working.MutateVariables(mutate)
	} else {
		ctx.Working.MutateVariablesOf(dirty, mutate)
	}
	step.Counters["variablesExcluded"] = marked
	step.Counters["unitsConverted"] = converted
	step.Counters["unknownUnits"] = len(unitMiss)
	return step, nil
}

// AddExternalMetadata merges external translation tables (CSV files in
// the synonym package's format) into the knowledge base — the chain's
// "add external metadata" component, which the poster notes "often
// exists as a translation table".
type AddExternalMetadata struct {
	// TablePaths are CSV translation tables to merge.
	TablePaths []string
	// Tables are in-memory tables to merge (tests, embedded defaults).
	Tables []*synonym.Table
}

// Name implements Component.
func (AddExternalMetadata) Name() string { return "add-external-metadata" }

// Run implements Component.
func (a AddExternalMetadata) Run(ctx *Context) (StepReport, error) {
	before := knowledgeFingerprint(ctx.Knowledge, ctx.Units, 0)
	merged := 0
	for _, p := range a.TablePaths {
		f, err := os.Open(p)
		if err != nil {
			return StepReport{}, fmt.Errorf("external table %s: %w", p, err)
		}
		t, err := synonym.ReadCSV(f)
		f.Close()
		if err != nil {
			return StepReport{}, fmt.Errorf("external table %s: %w", p, err)
		}
		if err := ctx.Knowledge.Synonyms.Merge(t); err != nil {
			return StepReport{}, fmt.Errorf("external table %s: %w", p, err)
		}
		merged++
	}
	for _, t := range a.Tables {
		if err := ctx.Knowledge.Synonyms.Merge(t); err != nil {
			return StepReport{}, err
		}
		merged++
	}
	step := StepReport{Counters: map[string]int{"tablesMerged": merged}}
	// Re-merging a table already absorbed on an earlier run is a no-op;
	// only an actual knowledge change forces the rest of the chain (and
	// the next run, until published) onto the full path.
	if merged > 0 && knowledgeFingerprint(ctx.Knowledge, ctx.Units, 0) != before {
		ctx.NoteKnowledgeChange()
		step.Counters["knowledgeChanged"] = 1
	}
	return step, nil
}

// DiscoverTransforms clusters "the mess that's left" — names the
// classifier cannot resolve — and converts each cluster into a mass-edit
// rule, exactly as the poster's Google Refine round trip does. Rules are
// accumulated on the context; PerformDiscovered applies them.
type DiscoverTransforms struct {
	// Methods run in order over the residual; nil means the default
	// ladder (fingerprint, 1-gram fingerprint, phonetic, Levenshtein 0.84).
	Methods []cluster.Method
}

// Name implements Component.
func (DiscoverTransforms) Name() string { return "discover-transforms" }

// Run implements Component.
func (d DiscoverTransforms) Run(ctx *Context) (StepReport, error) {
	// With stable knowledge and an empty archive delta the residual is
	// exactly what the previous run's discovery already clustered:
	// re-running could only rediscover the same fixed point.
	if !ctx.fullRun() && ctx.Delta.Empty() {
		return StepReport{Counters: map[string]int{"skipped": 1}}, nil
	}
	methods := d.Methods
	if methods == nil {
		methods = []cluster.Method{
			cluster.Fingerprint(),
			cluster.NGramFingerprint(1),
			cluster.Phonetic(),
			cluster.Levenshtein(0.84),
		}
	}
	cls := semdiv.NewClassifier(ctx.Knowledge)
	// The residual: names with no curated resolution — and no already
	// discovered one. A re-parsed file resurrects raw names that an
	// accumulated rule folds later in this same run (PerformDiscovered
	// runs after discovery); treating those as fresh mess would mint
	// near-duplicate rules and needlessly re-trigger full reprocessing
	// on every churned re-wrangle.
	ruled := ruledNames(ctx.DiscoveredRules)
	var residual []string
	for _, vc := range ctx.Working.VariableNameCounts() {
		if cls.Classify(vc.Value).Category == semdiv.CatUnknown && !ruled[vc.Value] {
			residual = append(residual, vc.Value)
		}
	}
	residualSet := make(map[string]bool, len(residual))
	for _, r := range residual {
		residualSet[r] = true
	}

	step := StepReport{Counters: map[string]int{"residualNames": len(residual)}}
	if len(residual) == 0 {
		return step, nil
	}

	// Serialized forms of the accumulated rules, computed once: a rule
	// already on the books must not be re-appended (it would re-trigger
	// a full reprocess on every run for a residual that never resolves).
	known := make(map[string]bool, len(ctx.DiscoveredRules))
	for _, r := range ctx.DiscoveredRules {
		if s, ok := serializeRule(r); ok {
			known[s] = true
		}
	}

	grid := ctx.Working.ToTable()
	counts, err := grid.ValueCounts("field")
	if err != nil {
		return StepReport{}, err
	}
	// Cluster over all names so residual values can collide with known
	// ones, but keep only clusters containing at least one residual name.
	folded := make(map[string]bool)
	rules := 0
	for _, m := range methods {
		clusters := m.Cluster(counts)
		var keep []cluster.Cluster
		for _, c := range clusters {
			hasResidual, allFolded := false, true
			for _, v := range c.Values {
				if residualSet[v.Value] && !folded[v.Value] {
					hasResidual = true
				}
				if !folded[v.Value] {
					allFolded = false
				}
			}
			if !hasResidual || allFolded {
				continue
			}
			// Prefer a canonical target: if any member resolves cleanly,
			// fold the cluster onto its canonical form.
			c.Recommended = bestTarget(c, cls)
			keep = append(keep, c)
			for _, v := range c.Values {
				folded[v.Value] = true
			}
		}
		if op := cluster.ToMassEdit("field", keep,
			fmt.Sprintf("Discovered by %s over the residual mess", m.Name())); op != nil {
			if s, ok := serializeRule(op); ok {
				if known[s] {
					continue // already on the books from an earlier run
				}
				known[s] = true
			}
			ctx.DiscoveredRules = append(ctx.DiscoveredRules, op)
			rules++
		}
	}
	step.Counters["rulesDiscovered"] = rules
	if rules > 0 {
		// A discovered fold can rename occurrences in features the scan
		// classified as unchanged — rules are curated knowledge, so the
		// rest of this run must walk the whole catalog.
		ctx.NoteKnowledgeChange()
	}
	return step, nil
}

// ruledNames collects every name an accumulated mass-edit rule already
// folds away (the From side of its edits).
func ruledNames(rules []refine.Operation) map[string]bool {
	out := make(map[string]bool)
	for _, r := range rules {
		me, ok := r.(*refine.MassEdit)
		if !ok {
			continue
		}
		for _, e := range me.Edits {
			for _, from := range e.From {
				out[from] = true
			}
		}
	}
	return out
}

// serializeRule renders a rule's canonical comparable form.
func serializeRule(op refine.Operation) (string, bool) {
	data, err := refine.ExportJSON([]refine.Operation{op})
	if err != nil {
		return "", false
	}
	return string(data), true
}

// bestTarget picks a cluster's fold target: the canonical resolution of
// the first member that classifies cleanly (in frequency order), else
// the cluster's own recommendation.
func bestTarget(c cluster.Cluster, cls *semdiv.Classifier) string {
	for _, v := range c.Values {
		f := cls.Classify(v.Value)
		switch f.Category {
		case semdiv.CatClean:
			return v.Value
		case semdiv.CatSynonym, semdiv.CatAbbreviation, semdiv.CatMinorVariation:
			if f.Canonical != "" {
				return f.Canonical
			}
		}
	}
	return c.Recommended
}

// PerformDiscovered applies the accumulated discovered rules to the
// working catalog through the refine grid — the poster's "run rules
// against metadata" arrow.
type PerformDiscovered struct{}

// Name implements Component.
func (PerformDiscovered) Name() string { return "perform-discovered" }

// Run implements Component.
func (PerformDiscovered) Run(ctx *Context) (StepReport, error) {
	step := StepReport{Counters: map[string]int{"rules": len(ctx.DiscoveredRules)}}
	if len(ctx.DiscoveredRules) == 0 {
		return step, nil
	}
	// With stable knowledge (no new rules this run) the accumulated
	// rules were already applied to every feature on earlier runs; only
	// the scan delta — e.g. a fresh file using a historically messy
	// name — still needs them.
	full := ctx.fullRun()
	var dirty []string
	if !full {
		dirty = ctx.Delta.Dirty()
		if len(dirty) == 0 {
			step.Counters["skipped"] = 1
			return step, nil
		}
	}
	var grid *table.Table
	if full {
		grid = ctx.Working.ToTable()
	} else {
		grid = ctx.Working.ToTableOf(dirty)
	}
	project := refine.NewProject(grid)
	if _, err := project.ApplyAll(ctx.DiscoveredRules); err != nil {
		return StepReport{}, err
	}
	changed, err := ctx.Working.ApplyTable(project.Table())
	if err != nil {
		return StepReport{}, err
	}
	step.Counters["datasetsChanged"] = changed
	step.Counters["cellsChanged"] = project.TotalCellsChanged()
	return step, nil
}

// GenerateHierarchies builds the variable taxonomy over the wrangled
// names (configure: levels, aggregation), records each variable's
// hierarchy parent, and links source-context variables to their
// taxonomies.
type GenerateHierarchies struct {
	Options hierarchy.GenerateOptions
	// Taxonomy receives the generated tree (for menus); optional.
	Taxonomy **hierarchy.Taxonomy
}

// Name implements Component.
func (GenerateHierarchies) Name() string { return "generate-hierarchies" }

// Run implements Component.
func (g GenerateHierarchies) Run(ctx *Context) (StepReport, error) {
	opts := g.Options
	if opts.MinGroupSize == 0 {
		opts = hierarchy.DefaultGenerateOptions()
	}
	var names []string
	for _, n := range ctx.Working.DistinctVariableNames() {
		names = append(names, n)
	}
	tax, err := hierarchy.Generate("variables", names, opts)
	if err != nil {
		return StepReport{}, err
	}
	if g.Taxonomy != nil {
		*g.Taxonomy = tax
	}

	// Context links per canonical variable.
	contextsFor := make(map[string][]string)
	for _, v := range ctx.Knowledge.Vocabulary {
		if v.Context != "" {
			contextsFor[v.Name] = []string{v.Context}
		}
	}

	// Classifier-driven parents: a multi-level name whose stem family has
	// only one member never earns a taxonomy group, but the classifier
	// still knows its parent concept (fluores410 under fluorescence).
	cls := semdiv.NewClassifier(ctx.Knowledge)
	classifiedParent := make(map[string]string)
	for _, name := range names {
		if f := cls.Classify(name); f.Category == semdiv.CatMultiLevel && f.GroupParent != "" {
			classifiedParent[name] = f.GroupParent
		}
	}

	// Taxonomy grouping is global — a new name can push a stem family
	// over the grouping threshold and re-parent variables in untouched
	// features — so the incremental pass is only sound while both the
	// knowledge and the distinct-name set are unchanged. The generated
	// tree itself is always rebuilt (it is cheap, sized by distinct
	// names); only the per-feature write-back is delta-scoped.
	nh := namesHash(names)
	full := ctx.fullRun() || nh != ctx.lastNamesHash
	var dirty []string
	if !full {
		dirty = ctx.Delta.Dirty()
	}
	processed := ctx.Working.Len()
	if !full {
		processed = len(dirty)
	}

	parents, linked := 0, 0
	mutate := func(f *catalog.Feature) bool {
		changed := false
		for i := range f.Variables {
			v := &f.Variables[i]
			if p, ok := tax.Parent(v.Name); ok && v.Parent != p {
				v.Parent = p
				parents++
				changed = true
			} else if p, ok := classifiedParent[v.Name]; ok && v.Parent == "" {
				v.Parent = p
				parents++
				changed = true
			}
			if ctxs, ok := contextsFor[v.Name]; ok && len(v.Contexts) == 0 {
				v.Contexts = append([]string(nil), ctxs...)
				linked++
				changed = true
			}
		}
		return changed
	}
	if full {
		ctx.Working.MutateVariables(mutate)
	} else if len(dirty) > 0 {
		ctx.Working.MutateVariablesOf(dirty, mutate)
	}
	ctx.lastNamesHash = nh
	return StepReport{Counters: map[string]int{
		"taxonomyTerms":     tax.Size(),
		"parentsSet":        parents,
		"contextsLinked":    linked,
		"featuresProcessed": processed,
		"featuresSkipped":   ctx.Working.Len() - processed,
	}}, nil
}

// Validate runs the validation suite and records the report on the
// context; it fails the chain when a check errors, so Publish never runs
// over a broken catalog.
type Validate struct {
	// Checks defaults to validate.DefaultChecks.
	Checks []validate.Check
	// AllowErrors records the report but lets the chain continue
	// (curator-inspection runs).
	AllowErrors bool
}

// Name implements Component.
func (Validate) Name() string { return "validate" }

// Run implements Component.
func (v Validate) Run(ctx *Context) (StepReport, error) {
	checks := v.Checks
	if checks == nil {
		checks = validate.DefaultChecks()
	}
	report := validate.Run(&validate.Context{
		Catalog:       ctx.Working,
		Knowledge:     ctx.Knowledge,
		Units:         ctx.Units,
		ExpectedPaths: ctx.ExpectedPaths,
	}, checks...)
	ctx.LastValidation = report
	step := StepReport{Counters: map[string]int{
		"checks":   len(report.ChecksRun),
		"errors":   report.Errors(),
		"warnings": report.Warnings(),
	}}
	findings := report.Findings
	sort.Slice(findings, func(i, j int) bool { return findings[i].Detail < findings[j].Detail })
	for i, f := range findings {
		if i >= 20 {
			step.Notes = append(step.Notes, fmt.Sprintf("... %d more findings", len(findings)-i))
			break
		}
		step.Notes = append(step.Notes, fmt.Sprintf("[%s] %s: %s", f.Severity, f.Check, f.Detail))
	}
	if !report.OK() && !v.AllowErrors {
		return step, fmt.Errorf("validation failed with %d errors", report.Errors())
	}
	return step, nil
}

// Publish atomically applies the working catalog's changes to the
// published catalog — the chain's final box. Instead of the historical
// clone-everything swap, it diffs working against published (ignoring
// scan bookkeeping) and applies exactly that delta: unchanged features
// are not re-cloned, the served snapshot is patched rather than
// rebuilt, and an empty diff leaves the snapshot generation untouched,
// so a no-op re-wrangle cannot evict generation-keyed query caches.
type Publish struct{}

// Name implements Component.
func (Publish) Name() string { return "publish" }

// Run implements Component.
func (Publish) Run(ctx *Context) (StepReport, error) {
	if ctx.Published == nil {
		return StepReport{}, fmt.Errorf("no published catalog configured")
	}
	changed, removed := ctx.Published.DiffTo(ctx.Working)
	aid := ctx.Trace.Start(ctx.TraceSpan, "apply-delta")
	t0 := time.Now()
	bumped, err := ctx.Published.ApplyDelta(changed, removed)
	applyDeltaSeconds.ObserveSeconds(time.Since(t0).Nanoseconds())
	ctx.Trace.Attr(aid, "changed", int64(len(changed)))
	ctx.Trace.Attr(aid, "removed", int64(len(removed)))
	ctx.Trace.End(aid)
	if err != nil {
		return StepReport{}, fmt.Errorf("publish: %w", err)
	}
	journaled := 0
	if ctx.Journal != nil {
		// Journal the applied delta with its generation stamp and the
		// knowledge-epoch sidecar. The journal itself skips the append
		// when neither moved (no-op re-wrangles stay quiet); an append
		// failure fails the run before the completion bookkeeping below,
		// so an acknowledged run is always on disk.
		sidecar, err := ctx.EpochSidecar()
		if err != nil {
			return StepReport{}, fmt.Errorf("publish: %w", err)
		}
		// The journal-append span covers encode + write + flush and,
		// under the always-fsync policy, the fsync itself; fsyncs are
		// aggregated separately in dnh_journal_fsync_duration_seconds.
		jid := ctx.Trace.Start(ctx.TraceSpan, "journal-append")
		t0 = time.Now()
		err = ctx.Journal.AppendPublish(ctx.Published.Generation(), changed, removed, sidecar)
		journalAppendSeconds.ObserveSeconds(time.Since(t0).Nanoseconds())
		ctx.Trace.End(jid)
		if err != nil {
			return StepReport{}, fmt.Errorf("publish: %w", err)
		}
		journaled = 1
	}
	// The run is complete: record the state the incremental machinery
	// compares future runs against, and clear the carried-dirty set —
	// everything dirty has now been transformed and published.
	ctx.hasRun = true
	ctx.lastRunEpoch = ctx.KnowledgeEpoch
	ctx.lastKnowledgeFP = knowledgeFingerprint(ctx.Knowledge, ctx.Units, len(ctx.PendingDecisions))
	ctx.pendingDirty = nil
	step := StepReport{Counters: map[string]int{
		"datasetsPublished": ctx.Published.Len(),
		"changed":           len(changed),
		"retracted":         len(removed),
		"unchanged":         ctx.Published.Len() - len(changed),
	}}
	if journaled == 1 {
		step.Counters["journaled"] = 1
	}
	if !bumped {
		step.Counters["generationStable"] = 1
	}
	return step, nil
}

// DefaultChain assembles the poster's full chain in order.
func DefaultChain() []Component {
	return []Component{
		ScanArchive{},
		KnownTransforms{},
		AddExternalMetadata{},
		DiscoverTransforms{},
		PerformDiscovered{},
		KnownTransforms{}, // re-run: discovered folds may land on known names
		GenerateHierarchies{},
		Validate{AllowErrors: true},
		Publish{},
	}
}
