package core

import (
	"fmt"
	"os"
	"sort"

	"metamess/internal/catalog"
	"metamess/internal/cluster"
	"metamess/internal/geo"
	"metamess/internal/hierarchy"
	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/semdiv"
	"metamess/internal/synonym"
	"metamess/internal/validate"
)

// ScanArchive is the chain's first component: walk the configured
// directories and upsert a feature per dataset into the working catalog
// (incremental across reruns).
type ScanArchive struct{}

// Name implements Component.
func (ScanArchive) Name() string { return "scan-archive" }

// Run implements Component.
func (ScanArchive) Run(ctx *Context) (StepReport, error) {
	res, err := scan.New(ctx.ScanConfig).ScanInto(ctx.Working)
	if err != nil {
		return StepReport{}, err
	}
	step := StepReport{Counters: map[string]int{
		"filesSeen":        res.Stats.FilesSeen,
		"parsed":           res.Stats.Parsed,
		"skippedUnchanged": res.Stats.SkippedUnchanged,
		"failed":           res.Stats.Failed,
	}}
	for _, e := range res.Errors {
		step.Notes = append(step.Notes, e.Error())
	}
	return step, nil
}

// KnownTransforms performs the "perform known transformations"
// component: translate names the curated knowledge already understands
// (synonyms, abbreviations, minor variations, single-context bases),
// mark excessive variables as excluded, canonicalize units, and fold in
// any pending curator decisions.
type KnownTransforms struct{}

// Name implements Component.
func (KnownTransforms) Name() string { return "known-transforms" }

// Run implements Component.
func (KnownTransforms) Run(ctx *Context) (StepReport, error) {
	cls := semdiv.NewClassifier(ctx.Knowledge)
	counts := ctx.Working.VariableNameCounts()
	names := make([]string, len(counts))
	for i, vc := range counts {
		names[i] = vc.Value
	}
	plan := semdiv.Resolve(cls.ClassifyAll(names))
	if len(ctx.PendingDecisions) > 0 {
		if err := plan.ApplyDecisions(ctx.PendingDecisions); err != nil {
			return StepReport{}, err
		}
		ctx.PendingDecisions = nil
	}

	step := StepReport{Counters: map[string]int{
		"translations": len(plan.Translations),
		"exclusions":   len(plan.Exclusions),
		"curatorQueue": len(plan.CuratorQueue),
	}}

	// Translations run through the refine grid so the rule is auditable.
	if op := plan.TranslationOp("field"); op != nil {
		grid := ctx.Working.ToTable()
		if _, err := op.Apply(grid); err != nil {
			return StepReport{}, err
		}
		changed, err := ctx.Working.ApplyTable(grid)
		if err != nil {
			return StepReport{}, err
		}
		step.Counters["datasetsChanged"] = changed
	}

	// Exclusions and unit canonicalization mutate features directly. A
	// variable harvested in a different unit than its vocabulary entry
	// prescribes (temperatures in degF, speeds in cm/s) has its observed
	// range converted into the variable's canonical unit, so range
	// queries and plausibility checks compare like with like.
	excluded := make(map[string]bool, len(plan.Exclusions))
	for _, e := range plan.Exclusions {
		excluded[e] = true
	}
	vocabUnit := make(map[string]string, len(ctx.Knowledge.Vocabulary))
	for _, cv := range ctx.Knowledge.Vocabulary {
		vocabUnit[cv.Name] = cv.Unit
	}
	unitMiss := make(map[string]bool)
	marked, converted := 0, 0
	ctx.Working.MutateVariables(func(f *catalog.Feature) bool {
		dirty := false
		for i := range f.Variables {
			v := &f.Variables[i]
			if excluded[v.Name] && !v.Excluded {
				v.Excluded = true
				marked++
				dirty = true
			}
			if v.Unit != "" && v.CanonicalUnit == "" {
				u, ok := ctx.Units.Lookup(v.Unit)
				if !ok {
					unitMiss[v.Unit] = true
					continue
				}
				target := vocabUnit[v.Name]
				if target == "" || target == u.Symbol || v.Count == 0 {
					// Same unit (or no vocabulary entry): just record the
					// resolved symbol, values need no conversion.
					v.CanonicalUnit = u.Symbol
					dirty = true
					continue
				}
				lo, err1 := ctx.Units.Convert(v.Range.Min, v.Unit, target)
				hi, err2 := ctx.Units.Convert(v.Range.Max, v.Unit, target)
				if err1 != nil || err2 != nil {
					// Cross-family surprise: keep the resolved symbol and
					// leave values alone for the curator to inspect.
					v.CanonicalUnit = u.Symbol
					dirty = true
					continue
				}
				v.Range = geo.NewValueRange(lo, hi)
				v.CanonicalUnit = target
				converted++
				dirty = true
			}
		}
		return dirty
	})
	step.Counters["variablesExcluded"] = marked
	step.Counters["unitsConverted"] = converted
	step.Counters["unknownUnits"] = len(unitMiss)
	for _, f := range plan.CuratorQueue {
		step.Notes = append(step.Notes, fmt.Sprintf("curator: %q is %s (%s)", f.RawName, f.Category, f.Evidence))
	}
	return step, nil
}

// AddExternalMetadata merges external translation tables (CSV files in
// the synonym package's format) into the knowledge base — the chain's
// "add external metadata" component, which the poster notes "often
// exists as a translation table".
type AddExternalMetadata struct {
	// TablePaths are CSV translation tables to merge.
	TablePaths []string
	// Tables are in-memory tables to merge (tests, embedded defaults).
	Tables []*synonym.Table
}

// Name implements Component.
func (AddExternalMetadata) Name() string { return "add-external-metadata" }

// Run implements Component.
func (a AddExternalMetadata) Run(ctx *Context) (StepReport, error) {
	merged := 0
	for _, p := range a.TablePaths {
		f, err := os.Open(p)
		if err != nil {
			return StepReport{}, fmt.Errorf("external table %s: %w", p, err)
		}
		t, err := synonym.ReadCSV(f)
		f.Close()
		if err != nil {
			return StepReport{}, fmt.Errorf("external table %s: %w", p, err)
		}
		if err := ctx.Knowledge.Synonyms.Merge(t); err != nil {
			return StepReport{}, fmt.Errorf("external table %s: %w", p, err)
		}
		merged++
	}
	for _, t := range a.Tables {
		if err := ctx.Knowledge.Synonyms.Merge(t); err != nil {
			return StepReport{}, err
		}
		merged++
	}
	return StepReport{Counters: map[string]int{"tablesMerged": merged}}, nil
}

// DiscoverTransforms clusters "the mess that's left" — names the
// classifier cannot resolve — and converts each cluster into a mass-edit
// rule, exactly as the poster's Google Refine round trip does. Rules are
// accumulated on the context; PerformDiscovered applies them.
type DiscoverTransforms struct {
	// Methods run in order over the residual; nil means the default
	// ladder (fingerprint, 1-gram fingerprint, phonetic, Levenshtein 0.84).
	Methods []cluster.Method
}

// Name implements Component.
func (DiscoverTransforms) Name() string { return "discover-transforms" }

// Run implements Component.
func (d DiscoverTransforms) Run(ctx *Context) (StepReport, error) {
	methods := d.Methods
	if methods == nil {
		methods = []cluster.Method{
			cluster.Fingerprint(),
			cluster.NGramFingerprint(1),
			cluster.Phonetic(),
			cluster.Levenshtein(0.84),
		}
	}
	cls := semdiv.NewClassifier(ctx.Knowledge)
	// The residual: names with no curated resolution.
	var residual []string
	for _, vc := range ctx.Working.VariableNameCounts() {
		if cls.Classify(vc.Value).Category == semdiv.CatUnknown {
			residual = append(residual, vc.Value)
		}
	}
	residualSet := make(map[string]bool, len(residual))
	for _, r := range residual {
		residualSet[r] = true
	}

	step := StepReport{Counters: map[string]int{"residualNames": len(residual)}}
	if len(residual) == 0 {
		return step, nil
	}

	grid := ctx.Working.ToTable()
	counts, err := grid.ValueCounts("field")
	if err != nil {
		return StepReport{}, err
	}
	// Cluster over all names so residual values can collide with known
	// ones, but keep only clusters containing at least one residual name.
	folded := make(map[string]bool)
	rules := 0
	for _, m := range methods {
		clusters := m.Cluster(counts)
		var keep []cluster.Cluster
		for _, c := range clusters {
			hasResidual, allFolded := false, true
			for _, v := range c.Values {
				if residualSet[v.Value] && !folded[v.Value] {
					hasResidual = true
				}
				if !folded[v.Value] {
					allFolded = false
				}
			}
			if !hasResidual || allFolded {
				continue
			}
			// Prefer a canonical target: if any member resolves cleanly,
			// fold the cluster onto its canonical form.
			c.Recommended = bestTarget(c, cls)
			keep = append(keep, c)
			for _, v := range c.Values {
				folded[v.Value] = true
			}
		}
		if op := cluster.ToMassEdit("field", keep,
			fmt.Sprintf("Discovered by %s over the residual mess", m.Name())); op != nil {
			ctx.DiscoveredRules = append(ctx.DiscoveredRules, op)
			rules++
		}
	}
	step.Counters["rulesDiscovered"] = rules
	return step, nil
}

// bestTarget picks a cluster's fold target: the canonical resolution of
// the first member that classifies cleanly (in frequency order), else
// the cluster's own recommendation.
func bestTarget(c cluster.Cluster, cls *semdiv.Classifier) string {
	for _, v := range c.Values {
		f := cls.Classify(v.Value)
		switch f.Category {
		case semdiv.CatClean:
			return v.Value
		case semdiv.CatSynonym, semdiv.CatAbbreviation, semdiv.CatMinorVariation:
			if f.Canonical != "" {
				return f.Canonical
			}
		}
	}
	return c.Recommended
}

// PerformDiscovered applies the accumulated discovered rules to the
// working catalog through the refine grid — the poster's "run rules
// against metadata" arrow.
type PerformDiscovered struct{}

// Name implements Component.
func (PerformDiscovered) Name() string { return "perform-discovered" }

// Run implements Component.
func (PerformDiscovered) Run(ctx *Context) (StepReport, error) {
	step := StepReport{Counters: map[string]int{"rules": len(ctx.DiscoveredRules)}}
	if len(ctx.DiscoveredRules) == 0 {
		return step, nil
	}
	grid := ctx.Working.ToTable()
	project := refine.NewProject(grid)
	if _, err := project.ApplyAll(ctx.DiscoveredRules); err != nil {
		return StepReport{}, err
	}
	changed, err := ctx.Working.ApplyTable(project.Table())
	if err != nil {
		return StepReport{}, err
	}
	step.Counters["datasetsChanged"] = changed
	step.Counters["cellsChanged"] = project.TotalCellsChanged()
	return step, nil
}

// GenerateHierarchies builds the variable taxonomy over the wrangled
// names (configure: levels, aggregation), records each variable's
// hierarchy parent, and links source-context variables to their
// taxonomies.
type GenerateHierarchies struct {
	Options hierarchy.GenerateOptions
	// Taxonomy receives the generated tree (for menus); optional.
	Taxonomy **hierarchy.Taxonomy
}

// Name implements Component.
func (GenerateHierarchies) Name() string { return "generate-hierarchies" }

// Run implements Component.
func (g GenerateHierarchies) Run(ctx *Context) (StepReport, error) {
	opts := g.Options
	if opts.MinGroupSize == 0 {
		opts = hierarchy.DefaultGenerateOptions()
	}
	var names []string
	for _, n := range ctx.Working.DistinctVariableNames() {
		names = append(names, n)
	}
	tax, err := hierarchy.Generate("variables", names, opts)
	if err != nil {
		return StepReport{}, err
	}
	if g.Taxonomy != nil {
		*g.Taxonomy = tax
	}

	// Context links per canonical variable.
	contextsFor := make(map[string][]string)
	for _, v := range ctx.Knowledge.Vocabulary {
		if v.Context != "" {
			contextsFor[v.Name] = []string{v.Context}
		}
	}

	// Classifier-driven parents: a multi-level name whose stem family has
	// only one member never earns a taxonomy group, but the classifier
	// still knows its parent concept (fluores410 under fluorescence).
	cls := semdiv.NewClassifier(ctx.Knowledge)
	classifiedParent := make(map[string]string)
	for _, name := range names {
		if f := cls.Classify(name); f.Category == semdiv.CatMultiLevel && f.GroupParent != "" {
			classifiedParent[name] = f.GroupParent
		}
	}

	parents, linked := 0, 0
	ctx.Working.MutateVariables(func(f *catalog.Feature) bool {
		dirty := false
		for i := range f.Variables {
			v := &f.Variables[i]
			if p, ok := tax.Parent(v.Name); ok && v.Parent != p {
				v.Parent = p
				parents++
				dirty = true
			} else if p, ok := classifiedParent[v.Name]; ok && v.Parent == "" {
				v.Parent = p
				parents++
				dirty = true
			}
			if ctxs, ok := contextsFor[v.Name]; ok && len(v.Contexts) == 0 {
				v.Contexts = append([]string(nil), ctxs...)
				linked++
				dirty = true
			}
		}
		return dirty
	})
	return StepReport{Counters: map[string]int{
		"taxonomyTerms":  tax.Size(),
		"parentsSet":     parents,
		"contextsLinked": linked,
	}}, nil
}

// Validate runs the validation suite and records the report on the
// context; it fails the chain when a check errors, so Publish never runs
// over a broken catalog.
type Validate struct {
	// Checks defaults to validate.DefaultChecks.
	Checks []validate.Check
	// AllowErrors records the report but lets the chain continue
	// (curator-inspection runs).
	AllowErrors bool
}

// Name implements Component.
func (Validate) Name() string { return "validate" }

// Run implements Component.
func (v Validate) Run(ctx *Context) (StepReport, error) {
	checks := v.Checks
	if checks == nil {
		checks = validate.DefaultChecks()
	}
	report := validate.Run(&validate.Context{
		Catalog:       ctx.Working,
		Knowledge:     ctx.Knowledge,
		Units:         ctx.Units,
		ExpectedPaths: ctx.ExpectedPaths,
	}, checks...)
	ctx.LastValidation = report
	step := StepReport{Counters: map[string]int{
		"checks":   len(report.ChecksRun),
		"errors":   report.Errors(),
		"warnings": report.Warnings(),
	}}
	findings := report.Findings
	sort.Slice(findings, func(i, j int) bool { return findings[i].Detail < findings[j].Detail })
	for i, f := range findings {
		if i >= 20 {
			step.Notes = append(step.Notes, fmt.Sprintf("... %d more findings", len(findings)-i))
			break
		}
		step.Notes = append(step.Notes, fmt.Sprintf("[%s] %s: %s", f.Severity, f.Check, f.Detail))
	}
	if !report.OK() && !v.AllowErrors {
		return step, fmt.Errorf("validation failed with %d errors", report.Errors())
	}
	return step, nil
}

// Publish atomically replaces the published catalog with the working
// catalog's current contents — the chain's final box.
type Publish struct{}

// Name implements Component.
func (Publish) Name() string { return "publish" }

// Run implements Component.
func (Publish) Run(ctx *Context) (StepReport, error) {
	if ctx.Published == nil {
		return StepReport{}, fmt.Errorf("no published catalog configured")
	}
	ctx.Published.ReplaceAll(ctx.Working)
	return StepReport{Counters: map[string]int{"datasetsPublished": ctx.Published.Len()}}, nil
}

// DefaultChain assembles the poster's full chain in order.
func DefaultChain() []Component {
	return []Component{
		ScanArchive{},
		KnownTransforms{},
		AddExternalMetadata{},
		DiscoverTransforms{},
		PerformDiscovered{},
		KnownTransforms{}, // re-run: discovered folds may land on known names
		GenerateHierarchies{},
		Validate{AllowErrors: true},
		Publish{},
	}
}
