package core

import (
	"encoding/json"
	"fmt"

	"metamess/internal/catalog"
	"metamess/internal/refine"
	"metamess/internal/semdiv"
)

// PublishJournal is the durability hook the Publish component drives:
// after applying a publish delta to the published catalog it appends
// the delta — stamped with the resulting generation and carrying the
// knowledge-epoch sidecar — so the whole curated state survives a
// crash. catalog.Store implements it.
type PublishJournal interface {
	AppendPublish(gen uint64, changed []*catalog.Feature, removed []string, sidecar []byte) error
}

// epochState is the knowledge-epoch sidecar riding every journaled
// publish: everything the incremental machinery needs, beyond the
// catalog features themselves, for a restarted process to continue
// delta-scoped instead of falling back to a cold full reprocess —
// discovered rules (ExportRules-style state), curated synonym and
// abbreviation additions, curator decisions still pending, and the
// epoch/fingerprint bookkeeping the scan compares against.
type epochState struct {
	Version        int    `json:"version"`
	KnowledgeEpoch uint64 `json:"knowledgeEpoch"`
	// NamesHash is the distinct-name-set fingerprint the hierarchy
	// generator last processed (see Context.lastNamesHash).
	NamesHash uint64 `json:"namesHash,omitempty"`
	// Knowledge is the curated knowledge dump (semdiv.EncodeKnowledge).
	Knowledge json.RawMessage `json:"knowledge,omitempty"`
	// Rules is the discovered-rule list (refine.ExportJSON).
	Rules json.RawMessage `json:"rules,omitempty"`
	// PendingDecisions are curator rulings submitted but not yet folded
	// into a completed run.
	PendingDecisions []semdiv.Decision `json:"pendingDecisions,omitempty"`
}

// EpochSidecar serializes the context's knowledge-epoch state. The
// encoding is deterministic for a given state, so the journal can skip
// appends when nothing (catalog or knowledge) changed.
func (c *Context) EpochSidecar() ([]byte, error) {
	es := epochState{
		Version:          1,
		KnowledgeEpoch:   c.KnowledgeEpoch,
		NamesHash:        c.lastNamesHash,
		PendingDecisions: c.PendingDecisions,
	}
	if c.Knowledge != nil {
		kdata, err := semdiv.EncodeKnowledge(c.Knowledge)
		if err != nil {
			return nil, err
		}
		es.Knowledge = kdata
	}
	if len(c.DiscoveredRules) > 0 {
		rules, err := refine.ExportJSON(c.DiscoveredRules)
		if err != nil {
			return nil, fmt.Errorf("core: serialize rules: %w", err)
		}
		es.Rules = rules
	}
	return json.Marshal(es)
}

// RestoreEpochSidecar is EpochSidecar's inverse, run once at warm
// restart after the published catalog has been recovered and cloned
// into the working catalog: it merges the persisted curation back into
// the knowledge base, reinstates the discovered rules and pending
// curator decisions, and marks the context as having completed a run at
// the persisted epoch — so the next Wrangle scopes its work to the
// archive churn since the crash instead of reprocessing everything.
func (c *Context) RestoreEpochSidecar(data []byte) error {
	var es epochState
	if err := json.Unmarshal(data, &es); err != nil {
		return fmt.Errorf("core: decode epoch sidecar: %w", err)
	}
	if es.Version != 1 {
		return fmt.Errorf("core: unsupported epoch sidecar version %d", es.Version)
	}
	if es.Knowledge != nil && c.Knowledge != nil {
		if err := semdiv.MergeEncodedKnowledge(c.Knowledge, es.Knowledge); err != nil {
			return err
		}
	}
	if es.Rules != nil {
		rules, err := refine.ImportJSON(es.Rules)
		if err != nil {
			return fmt.Errorf("core: restore rules: %w", err)
		}
		c.DiscoveredRules = rules
	}
	c.PendingDecisions = es.PendingDecisions
	c.KnowledgeEpoch = es.KnowledgeEpoch
	c.lastNamesHash = es.NamesHash
	// The persisted state is, by construction, the state at the end of a
	// completed (published) run: record the bookkeeping that lets the
	// next scan treat stat-unchanged files as clean.
	c.hasRun = true
	c.lastRunEpoch = es.KnowledgeEpoch
	c.lastKnowledgeFP = knowledgeFingerprint(c.Knowledge, c.Units, len(c.PendingDecisions))
	c.pendingDirty = nil
	return nil
}
