package core

import (
	"encoding/json"
	"fmt"

	"metamess/internal/cluster"
	"metamess/internal/hierarchy"
	"metamess/internal/validate"
)

// ProcessConfig is the declarative form of a wrangling process — the
// poster's curatorial activity 1, "creating metadata wrangling process
// for archive from composable components", as a JSON document a curator
// edits and versions. Each entry of Chain names a component and carries
// its parameters.
//
//	{
//	  "name": "cmop-nightly",
//	  "chain": [
//	    {"component": "scan-archive"},
//	    {"component": "known-transforms"},
//	    {"component": "add-external-metadata", "tables": ["synonyms.csv"]},
//	    {"component": "discover-transforms", "methods": ["fingerprint", "levenshtein:0.84"]},
//	    {"component": "perform-discovered"},
//	    {"component": "generate-hierarchies", "minGroupSize": 2},
//	    {"component": "validate", "allowErrors": false},
//	    {"component": "publish"}
//	  ]
//	}
type ProcessConfig struct {
	Name  string       `json:"name"`
	Chain []StepConfig `json:"chain"`
}

// StepConfig configures one chain component.
type StepConfig struct {
	Component string `json:"component"`
	// Tables parameterizes add-external-metadata (CSV paths).
	Tables []string `json:"tables,omitempty"`
	// Methods parameterizes discover-transforms: "fingerprint",
	// "ngram:N", "phonetic", "levenshtein:T", "jaro-winkler:T".
	Methods []string `json:"methods,omitempty"`
	// MinGroupSize parameterizes generate-hierarchies.
	MinGroupSize int `json:"minGroupSize,omitempty"`
	// AllowErrors parameterizes validate.
	AllowErrors bool `json:"allowErrors,omitempty"`
}

// ParseProcessConfig decodes a JSON process configuration.
func ParseProcessConfig(data []byte) (*ProcessConfig, error) {
	var cfg ProcessConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("core: parse process config: %w", err)
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: process config needs a name")
	}
	if len(cfg.Chain) == 0 {
		return nil, fmt.Errorf("core: process config needs a non-empty chain")
	}
	return &cfg, nil
}

// Build assembles the runnable process from the configuration.
func (cfg *ProcessConfig) Build() (*Process, error) {
	var components []Component
	for i, step := range cfg.Chain {
		comp, err := step.build()
		if err != nil {
			return nil, fmt.Errorf("core: chain step %d: %w", i, err)
		}
		components = append(components, comp)
	}
	return NewProcess(cfg.Name, components...), nil
}

func (s StepConfig) build() (Component, error) {
	switch s.Component {
	case "scan-archive":
		return ScanArchive{}, nil
	case "known-transforms":
		return KnownTransforms{}, nil
	case "add-external-metadata":
		return AddExternalMetadata{TablePaths: s.Tables}, nil
	case "discover-transforms":
		methods, err := parseMethods(s.Methods)
		if err != nil {
			return nil, err
		}
		return DiscoverTransforms{Methods: methods}, nil
	case "perform-discovered":
		return PerformDiscovered{}, nil
	case "generate-hierarchies":
		opts := hierarchy.DefaultGenerateOptions()
		if s.MinGroupSize > 0 {
			opts.MinGroupSize = s.MinGroupSize
		}
		return GenerateHierarchies{Options: opts}, nil
	case "validate":
		return Validate{Checks: validate.DefaultChecks(), AllowErrors: s.AllowErrors}, nil
	case "publish":
		return Publish{}, nil
	case "":
		return nil, fmt.Errorf("missing component name")
	default:
		return nil, fmt.Errorf("unknown component %q", s.Component)
	}
}

// parseMethods decodes the "name[:param]" method specs.
func parseMethods(specs []string) ([]cluster.Method, error) {
	if len(specs) == 0 {
		return nil, nil // DiscoverTransforms applies its default ladder
	}
	var out []cluster.Method
	for _, spec := range specs {
		name, param := spec, ""
		if i := indexByte(spec, ':'); i >= 0 {
			name, param = spec[:i], spec[i+1:]
		}
		switch name {
		case "fingerprint":
			out = append(out, cluster.Fingerprint())
		case "ngram":
			n := 1
			if param != "" {
				if _, err := fmt.Sscanf(param, "%d", &n); err != nil || n < 1 {
					return nil, fmt.Errorf("bad ngram size %q", param)
				}
			}
			out = append(out, cluster.NGramFingerprint(n))
		case "phonetic":
			out = append(out, cluster.Phonetic())
		case "levenshtein":
			t := 0.84
			if param != "" {
				if _, err := fmt.Sscanf(param, "%g", &t); err != nil || t <= 0 || t > 1 {
					return nil, fmt.Errorf("bad levenshtein threshold %q", param)
				}
			}
			out = append(out, cluster.Levenshtein(t))
		case "jaro-winkler":
			t := 0.93
			if param != "" {
				if _, err := fmt.Sscanf(param, "%g", &t); err != nil || t <= 0 || t > 1 {
					return nil, fmt.Errorf("bad jaro-winkler threshold %q", param)
				}
			}
			out = append(out, cluster.JaroWinkler(t))
		default:
			return nil, fmt.Errorf("unknown clustering method %q", name)
		}
	}
	return out, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// DefaultProcessConfig returns the configuration equivalent of
// DefaultChain, as a starting point for curators.
func DefaultProcessConfig(name string) *ProcessConfig {
	return &ProcessConfig{
		Name: name,
		Chain: []StepConfig{
			{Component: "scan-archive"},
			{Component: "known-transforms"},
			{Component: "add-external-metadata"},
			{Component: "discover-transforms"},
			{Component: "perform-discovered"},
			{Component: "known-transforms"},
			{Component: "generate-hierarchies"},
			{Component: "validate", AllowErrors: true},
			{Component: "publish"},
		},
	}
}

// MarshalJSON renders the config with stable indentation for rule files.
func (cfg *ProcessConfig) Marshal() ([]byte, error) {
	return json.MarshalIndent(cfg, "", "  ")
}
