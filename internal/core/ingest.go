package core

import (
	"fmt"

	"metamess/internal/catalog"
)

// PublishDirect applies an externally produced feature delta — a push
// from a live producer, not a wrangle over the working catalog — through
// exactly the pipeline a chain Publish uses: the published catalog's
// sharded ApplyDelta, the knowledge-epoch sidecar, and the durable
// journal append. Durability, replication tailing, and generation-keyed
// cache invalidation therefore work unchanged for pushed metadata.
//
// The working catalog is kept in sync so the next Wrangle's
// DiffTo(Working) does not see the pushed features as drift and retract
// them. (A later filesystem scan can still retract a pushed feature
// whose path lies inside the scanned directories but has no backing
// file — push paths should live outside the walker's scope.)
//
// The delta is trimmed to what actually differs: features content-equal
// to their published predecessor and removals of absent IDs are dropped,
// so a replayed push is a generation-stable no-op, exactly like a no-op
// re-wrangle. Callers must serialize PublishDirect against chain runs;
// the facade holds one publish lock across both.
//
// Every feature must already be validated — PublishDirect validates
// again via the catalog (defense in depth) but performs no mutation
// until the whole batch has been checked, so a rejected publish leaves
// the catalogs, the generation, and the journal untouched.
func (c *Context) PublishDirect(features []*catalog.Feature, removeIDs []string) (gen uint64, changed int, removed int, err error) {
	if c.Published == nil {
		return 0, 0, 0, fmt.Errorf("core: no published catalog configured")
	}
	for _, f := range features {
		if f == nil {
			return 0, 0, 0, fmt.Errorf("core: publish: nil feature")
		}
		if err := f.Validate(); err != nil {
			return 0, 0, 0, fmt.Errorf("core: publish: %w", err)
		}
	}

	// Trim to the real delta against the served snapshot. ByID reads the
	// immutable snapshot without cloning.
	snap := c.Published.Snapshot()
	var applyChanged []*catalog.Feature
	for _, f := range features {
		if prev, ok := snap.ByID(f.ID); ok && prev.ContentEquals(f) {
			continue
		}
		// Private clone: ApplyDelta takes ownership, and the caller's
		// features must stay the caller's.
		applyChanged = append(applyChanged, f.Clone())
	}
	var applyRemoved []string
	for _, id := range removeIDs {
		if _, ok := snap.ByID(id); ok {
			applyRemoved = append(applyRemoved, id)
		}
	}

	// Mirror the working catalog first: if an upsert fails here nothing
	// has touched the served snapshot or the journal yet.
	for _, f := range features {
		if err := c.Working.Upsert(f); err != nil {
			return 0, 0, 0, fmt.Errorf("core: publish: %w", err)
		}
	}
	for _, id := range removeIDs {
		c.Working.Delete(id)
	}

	if _, err := c.Published.ApplyDelta(applyChanged, applyRemoved); err != nil {
		return 0, 0, 0, fmt.Errorf("core: publish: %w", err)
	}
	gen = c.Published.Generation()
	if c.Journal != nil {
		sidecar, err := c.EpochSidecar()
		if err != nil {
			return gen, len(applyChanged), len(applyRemoved), fmt.Errorf("core: publish: %w", err)
		}
		if err := c.Journal.AppendPublish(gen, applyChanged, applyRemoved, sidecar); err != nil {
			return gen, len(applyChanged), len(applyRemoved), fmt.Errorf("core: publish: %w", err)
		}
	}
	return gen, len(applyChanged), len(applyRemoved), nil
}
