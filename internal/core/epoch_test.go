package core

import (
	"bytes"
	"testing"

	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/semdiv"
	"metamess/internal/vocab"
)

// TestEpochSidecarRoundTrip pins the warm-restart contract for the
// curated state: everything a crash would otherwise lose — synonym
// additions, discovered rules, pending curator decisions, the epoch
// counter and hierarchy names-hash — serializes into the sidecar and
// restores into a fresh context such that the knowledge fingerprint
// (what ScanArchive compares) is bit-identical, so the first
// post-restart run stays delta-scoped.
func TestEpochSidecarRoundTrip(t *testing.T) {
	mkCtx := func() *Context {
		k, err := semdiv.NewKnowledge(vocab.Standard())
		if err != nil {
			t.Fatal(err)
		}
		return NewContext(k, scan.Config{Root: t.TempDir()})
	}

	ctx := mkCtx()
	// Curate: a synonym a crash must not forget.
	if err := ctx.Knowledge.Synonyms.Add("water_temperature", "wassertemperatur"); err != nil {
		t.Fatal(err)
	}
	// A discovered rule (ExportRules-style state).
	ctx.DiscoveredRules = append(ctx.DiscoveredRules, &refine.MassEdit{
		Desc:       "Discovered by fingerprint over the residual mess",
		ColumnName: "field",
		Expression: "value",
		Edits:      []refine.Edit{{From: []string{"temp.", "tmp"}, To: "water_temperature"}},
	})
	// A pending curator decision submitted mid-run.
	ctx.PendingDecisions = append(ctx.PendingDecisions,
		semdiv.Decision{RawName: "cond", Action: semdiv.ClarifyTo, Target: "conductivity"})
	ctx.KnowledgeEpoch = 7
	ctx.lastNamesHash = 991

	sidecar, err := ctx.EpochSidecar()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ctx.EpochSidecar()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sidecar, again) {
		t.Fatal("EpochSidecar is not deterministic; the journal cannot dedup no-op publishes")
	}

	restored := mkCtx()
	if err := restored.RestoreEpochSidecar(sidecar); err != nil {
		t.Fatal(err)
	}
	if restored.KnowledgeEpoch != 7 || restored.lastNamesHash != 991 {
		t.Fatalf("epoch/namesHash = %d/%d", restored.KnowledgeEpoch, restored.lastNamesHash)
	}
	if !restored.hasRun || restored.lastRunEpoch != 7 {
		t.Fatal("restored context not marked as having completed a run")
	}
	if len(restored.PendingDecisions) != 1 || restored.PendingDecisions[0].Target != "conductivity" {
		t.Fatalf("pending decisions = %+v", restored.PendingDecisions)
	}
	wantRules, err := refine.ExportJSON(ctx.DiscoveredRules)
	if err != nil {
		t.Fatal(err)
	}
	gotRules, err := refine.ExportJSON(restored.DiscoveredRules)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantRules, gotRules) {
		t.Fatalf("rules did not survive: %s != %s", gotRules, wantRules)
	}
	// The decisive check: the restored fingerprint equals both the
	// original's live fingerprint and the bookkeeping the restore
	// recorded — so ScanArchive sees no phantom knowledge change.
	origFP := knowledgeFingerprint(ctx.Knowledge, ctx.Units, len(ctx.PendingDecisions))
	restFP := knowledgeFingerprint(restored.Knowledge, restored.Units, len(restored.PendingDecisions))
	if origFP != restFP {
		t.Fatal("knowledge fingerprint drifted across the sidecar round trip (restart would full-reprocess)")
	}
	if restored.lastKnowledgeFP != restFP {
		t.Fatal("restore recorded a stale fingerprint")
	}

	// Version gate: a sidecar from the future refuses cleanly.
	if err := mkCtx().RestoreEpochSidecar([]byte(`{"version":99}`)); err == nil {
		t.Fatal("unsupported sidecar version accepted")
	}
	if err := mkCtx().RestoreEpochSidecar([]byte(`{broken`)); err == nil {
		t.Fatal("malformed sidecar accepted")
	}
}
