package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/semdiv"
	"metamess/internal/synonym"
	"metamess/internal/vocab"
)

// newTestContext generates an archive and a ready context.
func newTestContext(t testing.TB, datasets int, seed int64) (*Context, *archive.Manifest) {
	t.Helper()
	root := t.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		t.Fatal(err)
	}
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	return NewContext(k, scan.Config{Root: root}), m
}

func TestFullChainReducesMess(t *testing.T) {
	ctx, m := newTestContext(t, 30, 42)
	p := NewProcess("full", DefaultChain()...)
	report, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Steps) != len(p.Components) {
		t.Fatalf("steps = %d, want %d", len(report.Steps), len(p.Components))
	}
	if ctx.Working.Len() != len(m.Datasets) {
		t.Errorf("working catalog = %d datasets, want %d", ctx.Working.Len(), len(m.Datasets))
	}
	if ctx.Published.Len() != len(m.Datasets) {
		t.Errorf("published catalog = %d datasets, want %d", ctx.Published.Len(), len(m.Datasets))
	}
	// The chain's whole point: coverage rises substantially.
	if report.MessAfter.OccurrenceCoverage <= report.MessBefore.OccurrenceCoverage {
		t.Errorf("coverage did not improve: %.3f -> %.3f",
			report.MessBefore.OccurrenceCoverage, report.MessAfter.OccurrenceCoverage)
	}
	if report.MessAfter.OccurrenceCoverage < 0.9 {
		t.Errorf("final coverage = %.3f, want >= 0.9", report.MessAfter.OccurrenceCoverage)
	}
	// Coverage never decreases across steps.
	prev := report.MessBefore.OccurrenceCoverage
	for _, s := range report.Steps {
		if s.MessAfter.OccurrenceCoverage < prev-1e-9 {
			t.Errorf("step %s decreased coverage: %.3f -> %.3f",
				s.Component, prev, s.MessAfter.OccurrenceCoverage)
		}
		prev = s.MessAfter.OccurrenceCoverage
	}
	if len(p.History) != 1 {
		t.Errorf("history = %d runs", len(p.History))
	}
}

func TestChainResolvesGroundTruth(t *testing.T) {
	ctx, m := newTestContext(t, 30, 7)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Score against the generator's ground truth: translatable categories
	// must overwhelmingly land on their canonical names.
	truth := m.ByPath()
	total, correct := 0, 0
	for _, f := range ctx.Published.All() {
		d := truth[f.Path]
		for i, v := range f.Variables {
			want := d.Vars[i]
			switch want.Category {
			case semdiv.CatSynonym, semdiv.CatAbbreviation, semdiv.CatMinorVariation:
				total++
				if v.Name == want.Canonical {
					correct++
				}
			case semdiv.CatExcessive:
				if !v.Excluded {
					t.Errorf("%s: excessive %q not excluded", f.Path, v.RawName)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no translatable mess generated")
	}
	accuracy := float64(correct) / float64(total)
	if accuracy < 0.90 {
		t.Errorf("translation accuracy = %.3f (%d/%d), want >= 0.90 (residual errors concentrate in the inherently confusable fluoresNNN family)", accuracy, correct, total)
	}
}

func TestRerunIsIdempotentAndIncremental(t *testing.T) {
	ctx, _ := newTestContext(t, 15, 13)
	p := NewProcess("full", DefaultChain()...)
	r1, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before := ctx.Published.Generation()
	snapshot := ctx.Working.VariableNameCounts()

	r2, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Incremental: nothing re-parsed.
	if r2.Steps[0].Counters["parsed"] != 0 {
		t.Errorf("rerun parsed %d files, want 0", r2.Steps[0].Counters["parsed"])
	}
	if r2.Steps[0].Counters["skippedUnchanged"] != ctx.Working.Len() {
		t.Errorf("rerun skipped %d, want %d", r2.Steps[0].Counters["skippedUnchanged"], ctx.Working.Len())
	}
	// Idempotent: names unchanged.
	after := ctx.Working.VariableNameCounts()
	if len(snapshot) != len(after) {
		t.Fatalf("rerun changed distinct names: %d -> %d", len(snapshot), len(after))
	}
	for i := range snapshot {
		if snapshot[i] != after[i] {
			t.Errorf("rerun changed name %v -> %v", snapshot[i], after[i])
		}
	}
	if r2.MessAfter != r1.MessAfter {
		t.Errorf("rerun changed mess: %+v vs %+v", r2.MessAfter, r1.MessAfter)
	}
	// A no-op rerun publishes an empty delta: the generation — and with
	// it every generation-keyed cache downstream — must survive.
	if got := ctx.Published.Generation(); got != before {
		t.Errorf("no-op rerun moved the published generation: %d -> %d", before, got)
	}
	last := r2.Steps[len(r2.Steps)-1]
	if last.Counters["changed"] != 0 || last.Counters["generationStable"] != 1 {
		t.Errorf("no-op publish counters = %v", last.Counters)
	}
	// Delta-aware components sat the rerun out.
	for _, st := range r2.Steps {
		switch st.Component {
		case "known-transforms", "generate-hierarchies":
			if st.Counters["featuresProcessed"] != 0 || st.Counters["featuresSkipped"] != ctx.Working.Len() {
				t.Errorf("%s on no-op rerun processed %d, skipped %d (want 0/%d)",
					st.Component, st.Counters["featuresProcessed"], st.Counters["featuresSkipped"], ctx.Working.Len())
			}
		case "discover-transforms":
			if st.Counters["skipped"] != 1 {
				t.Errorf("discover-transforms did not skip on no-op rerun: %v", st.Counters)
			}
		case "perform-discovered":
			if st.Counters["rules"] > 0 && st.Counters["skipped"] != 1 {
				t.Errorf("perform-discovered did not skip on no-op rerun: %v", st.Counters)
			}
		}
	}
}

func TestCuratorImprovementLoop(t *testing.T) {
	ctx, _ := newTestContext(t, 30, 99)
	p := NewProcess("full", DefaultChain()...)
	r1, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	unresolved1 := r1.MessAfter.UnresolvedNames
	if unresolved1 == 0 {
		t.Skip("archive produced no residual mess at this seed")
	}
	// Curatorial activity 3: add the unresolved names to the synonym
	// table, and rule on source-context names (simulating a curator
	// consulting the ground truth).
	cls := semdiv.NewClassifier(ctx.Knowledge)
	for _, vc := range ctx.Working.VariableNameCounts() {
		switch f := cls.Classify(vc.Value); f.Category {
		case semdiv.CatUnknown, semdiv.CatAmbiguous:
			if err := ctx.Knowledge.Synonyms.Add("water_velocity", vc.Value); err != nil {
				t.Logf("curation skip %q: %v", vc.Value, err)
			}
		case semdiv.CatSourceContext:
			ctx.PendingDecisions = append(ctx.PendingDecisions,
				semdiv.Decision{RawName: vc.Value, Action: semdiv.ClarifyTo, Target: "water_temperature"})
		}
	}
	r2, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MessAfter.UnresolvedNames >= unresolved1 {
		t.Errorf("improvement did not reduce unresolved: %d -> %d",
			unresolved1, r2.MessAfter.UnresolvedNames)
	}
}

func TestCuratorDecisionsFlowThroughChain(t *testing.T) {
	ctx, _ := newTestContext(t, 21, 5)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Find an ambiguous name in the catalog (the generator injects "temp").
	hasTemp := false
	for _, vc := range ctx.Working.VariableNameCounts() {
		if vc.Value == "temp" {
			hasTemp = true
		}
	}
	if !hasTemp {
		t.Skip("no ambiguous name at this seed")
	}
	ctx.PendingDecisions = []semdiv.Decision{
		{RawName: "temp", Action: semdiv.ClarifyTo, Target: "water_temperature"},
	}
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	for _, vc := range ctx.Working.VariableNameCounts() {
		if vc.Value == "temp" {
			t.Error("clarified name still present after decision")
		}
	}
	if ctx.PendingDecisions != nil {
		t.Error("decisions not consumed")
	}
}

func TestValidateGatesPublish(t *testing.T) {
	ctx, m := newTestContext(t, 9, 3)
	ctx.ExpectedPaths = []string{"stations/never/exists.obs"}
	chain := []Component{
		ScanArchive{},
		KnownTransforms{},
		Validate{}, // strict: errors abort
		Publish{},
	}
	p := NewProcess("gated", chain...)
	_, err := p.Run(ctx)
	if err == nil {
		t.Fatal("chain should fail on validation errors")
	}
	if !strings.Contains(err.Error(), "validation failed") {
		t.Errorf("error = %v", err)
	}
	if ctx.Published.Len() != 0 {
		t.Error("publish ran despite failed validation")
	}
	if ctx.LastValidation == nil || ctx.LastValidation.OK() {
		t.Error("validation report not recorded")
	}
	// Fix the expectation: chain completes and publishes.
	ctx.ExpectedPaths = []string{m.Datasets[0].Path}
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Published.Len() == 0 {
		t.Error("publish did not run after validation passed")
	}
}

func TestDiscoveredRulesExportable(t *testing.T) {
	ctx, _ := newTestContext(t, 30, 42)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if len(ctx.DiscoveredRules) == 0 {
		t.Skip("no rules discovered at this seed")
	}
	data, err := refine.ExportJSON(ctx.DiscoveredRules)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "core/mass-edit") {
		t.Error("exported rules missing mass-edit op")
	}
	back, err := refine.ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ctx.DiscoveredRules) {
		t.Errorf("round trip = %d rules, want %d", len(back), len(ctx.DiscoveredRules))
	}
}

func TestAddExternalMetadataComponent(t *testing.T) {
	ctx, _ := newTestContext(t, 6, 1)
	ext := synonym.NewTable()
	if err := ext.Add("water_temperature", "exotic_wt_name"); err != nil {
		t.Fatal(err)
	}
	comp := AddExternalMetadata{Tables: []*synonym.Table{ext}}
	step, err := comp.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if step.Counters["tablesMerged"] != 1 {
		t.Errorf("counters = %v", step.Counters)
	}
	if !ctx.Knowledge.Synonyms.Covers("exotic_wt_name") {
		t.Error("external table not merged")
	}
	// Missing file path fails loudly.
	bad := AddExternalMetadata{TablePaths: []string{"/does/not/exist.csv"}}
	if _, err := bad.Run(ctx); err == nil {
		t.Error("missing external table accepted")
	}
}

func TestMessMetric(t *testing.T) {
	ctx, _ := newTestContext(t, 9, 2)
	empty := Mess(ctx.Working, ctx.Knowledge)
	if empty.DistinctNames != 0 || empty.OccurrenceCoverage != 0 {
		t.Errorf("empty mess = %+v", empty)
	}
	if _, err := NewProcess("scan", ScanArchive{}).Run(ctx); err != nil {
		t.Fatal(err)
	}
	raw := Mess(ctx.Working, ctx.Knowledge)
	if raw.DistinctNames == 0 {
		t.Fatal("no names after scan")
	}
	if raw.CanonicalNames+raw.UnresolvedNames+raw.ExcludedNames+raw.GroupedNames != raw.DistinctNames {
		t.Errorf("mess partitions do not sum: %+v", raw)
	}
	if Mess(nil, nil).DistinctNames != 0 {
		t.Error("nil mess should be zero")
	}
}

func TestProcessStopsAtFailingComponent(t *testing.T) {
	ctx, _ := newTestContext(t, 3, 1)
	ctx.ScanConfig.Root = "/nonexistent/archive/root"
	p := NewProcess("broken", DefaultChain()...)
	report, err := p.Run(ctx)
	if err == nil {
		t.Fatal("missing archive root should fail the chain")
	}
	if len(report.Steps) != 0 {
		t.Errorf("failed first step still recorded %d steps", len(report.Steps))
	}
	if len(p.History) != 0 {
		t.Error("failed run recorded in history")
	}
}

func BenchmarkFullChain30(b *testing.B) {
	ctx, _ := newTestContext(b, 30, 42)
	p := NewProcess("bench", DefaultChain()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDeltaRerunProcessesOnlyChurn modifies one file between runs and
// checks the delta machinery end to end: one re-parse, delta-scoped
// component passes, a one-feature publish, and a moved generation.
func TestDeltaRerunProcessesOnlyChurn(t *testing.T) {
	ctx, m := newTestContext(t, 18, 21)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	genBefore := ctx.Published.Generation()

	target := filepath.Join(ctx.ScanConfig.Root, m.Datasets[2].Path)
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(3 * time.Second)
	if err := os.Chtimes(target, future, future); err != nil {
		t.Fatal(err)
	}

	r2, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	scanStep := r2.Steps[0]
	if scanStep.Counters["parsed"] != 1 || scanStep.Counters["changed"] != 1 {
		t.Fatalf("churn scan counters = %v", scanStep.Counters)
	}
	if scanStep.Counters["fullReprocess"] != 0 {
		t.Fatalf("churn rerun went full: %v", scanStep.Counters)
	}
	for _, st := range r2.Steps {
		if st.Component == "known-transforms" && st.Counters["featuresProcessed"] != 1 {
			t.Errorf("known-transforms processed %d features, want 1 (counters %v)",
				st.Counters["featuresProcessed"], st.Counters)
		}
	}
	last := r2.Steps[len(r2.Steps)-1]
	if last.Counters["changed"] != 1 || last.Counters["unchanged"] != ctx.Published.Len()-1 {
		t.Errorf("publish counters = %v", last.Counters)
	}
	if ctx.Published.Generation() == genBefore {
		t.Error("real churn must move the published generation")
	}
}

// TestKnowledgeChangeForcesFullReprocess mutates the knowledge between
// runs (as curator tooling does, directly) and checks the epoch falls
// the chain back to a full pass — including features the scan skipped.
func TestKnowledgeChangeForcesFullReprocess(t *testing.T) {
	ctx, _ := newTestContext(t, 12, 13)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	epoch := ctx.KnowledgeEpoch
	if err := ctx.Knowledge.Synonyms.Add("water_temperature", "brand_new_alias"); err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.KnowledgeEpoch == epoch {
		t.Fatal("direct knowledge mutation not detected")
	}
	if r2.Steps[0].Counters["fullReprocess"] != 1 {
		t.Fatalf("knowledge change did not force full reprocess: %v", r2.Steps[0].Counters)
	}
	for _, st := range r2.Steps {
		if st.Component == "known-transforms" && st.Counters["featuresSkipped"] != 0 {
			t.Errorf("full run skipped %d features", st.Counters["featuresSkipped"])
		}
	}
	// Third run with nothing new: incremental again.
	r3, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Steps[0].Counters["fullReprocess"] != 0 {
		t.Errorf("epoch did not settle after publish: %v", r3.Steps[0].Counters)
	}
}

// TestDeletionRetractsFromPublished removes an archive file and checks
// the vanished dataset leaves both catalogs — the leak the pre-delta
// write path had ("files removed linger in the catalog forever").
func TestDeletionRetractsFromPublished(t *testing.T) {
	ctx, m := newTestContext(t, 10, 7)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(ctx.ScanConfig.Root, m.Datasets[0].Path)); err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Steps[0].Counters["removed"] != 1 {
		t.Fatalf("scan counters = %v", r2.Steps[0].Counters)
	}
	last := r2.Steps[len(r2.Steps)-1]
	if last.Counters["retracted"] != 1 {
		t.Fatalf("publish counters = %v", last.Counters)
	}
	id := catalog.IDForPath(m.Datasets[0].Path)
	if _, ok := ctx.Working.Get(id); ok {
		t.Error("deleted dataset still in working catalog")
	}
	if _, ok := ctx.Published.Get(id); ok {
		t.Error("deleted dataset still in published catalog")
	}
	if ctx.Published.Len() != len(m.Datasets)-1 {
		t.Errorf("published len = %d, want %d", ctx.Published.Len(), len(m.Datasets)-1)
	}
}

// failAfterScan is a component that errors, aborting the chain between
// ScanArchive and Publish.
type failAfterScan struct{}

func (failAfterScan) Name() string { return "fail-after-scan" }
func (failAfterScan) Run(*Context) (StepReport, error) {
	return StepReport{}, fmt.Errorf("transient failure")
}

// TestAbortedRunDoesNotStrandDirtyFeatures reproduces the mid-chain
// failure hazard: run N re-parses a churned file into Working (raw
// names) and then aborts before Publish; run N+1's scan sees the file
// stat-unchanged. The carried-dirty set must keep the feature in the
// delta so it is transformed before publishing — otherwise raw,
// unwrangled metadata would reach the served catalog.
func TestAbortedRunDoesNotStrandDirtyFeatures(t *testing.T) {
	ctx, m := newTestContext(t, 15, 31)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	namesBefore := ctx.Published.VariableNameCounts()

	// Churn one file (names unchanged, content changed), then run a
	// chain that scans and aborts.
	target := filepath.Join(ctx.ScanConfig.Root, m.Datasets[3].Path)
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(3 * time.Second)
	if err := os.Chtimes(target, future, future); err != nil {
		t.Fatal(err)
	}
	broken := NewProcess("broken", ScanArchive{}, failAfterScan{})
	if _, err := broken.Run(ctx); err == nil {
		t.Fatal("broken chain should fail")
	}

	// Recovery run: the scan reports nothing parsed, but the stranded
	// feature must be carried into the delta and fully re-wrangled.
	r, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	scanStep := r.Steps[0]
	if scanStep.Counters["parsed"] != 0 {
		t.Fatalf("recovery run re-parsed: %v", scanStep.Counters)
	}
	if scanStep.Counters["carriedOver"] != 1 {
		t.Fatalf("stranded feature not carried over: %v", scanStep.Counters)
	}
	for _, st := range r.Steps {
		if st.Component == "known-transforms" && st.Counters["featuresProcessed"] != 1 {
			t.Fatalf("carried feature not processed by %s: %v", st.Component, st.Counters)
		}
	}
	// The published name multiset must be unchanged: a stranded raw
	// feature would leak messy names into the served catalog.
	namesAfter := ctx.Published.VariableNameCounts()
	if len(namesBefore) != len(namesAfter) {
		t.Fatalf("published distinct names changed: %d -> %d", len(namesBefore), len(namesAfter))
	}
	for i := range namesBefore {
		if namesBefore[i] != namesAfter[i] {
			t.Errorf("published names diverged: %v -> %v", namesBefore[i], namesAfter[i])
		}
	}
	// Once published, the pending set is consumed: the next run carries
	// nothing.
	r2, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Steps[0].Counters["carriedOver"] != 0 {
		t.Fatalf("pending set not cleared after publish: %v", r2.Steps[0].Counters)
	}
}

// TestUnitAliasChangeForcesFullReprocess guards the package doc's
// promise that "unit aliases" added between runs move the knowledge
// epoch: the unit registry is part of the curated-state fingerprint.
func TestUnitAliasChangeForcesFullReprocess(t *testing.T) {
	ctx, _ := newTestContext(t, 8, 41)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Units.AddAlias("curator_degrees", ctx.Units.Symbols()[0]); err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Steps[0].Counters["fullReprocess"] != 1 {
		t.Fatalf("unit alias change did not force full reprocess: %v", r2.Steps[0].Counters)
	}
}
