package core

import (
	"strings"
	"testing"

	"metamess/internal/archive"
	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/semdiv"
	"metamess/internal/synonym"
	"metamess/internal/vocab"
)

// newTestContext generates an archive and a ready context.
func newTestContext(t testing.TB, datasets int, seed int64) (*Context, *archive.Manifest) {
	t.Helper()
	root := t.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		t.Fatal(err)
	}
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	return NewContext(k, scan.Config{Root: root}), m
}

func TestFullChainReducesMess(t *testing.T) {
	ctx, m := newTestContext(t, 30, 42)
	p := NewProcess("full", DefaultChain()...)
	report, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Steps) != len(p.Components) {
		t.Fatalf("steps = %d, want %d", len(report.Steps), len(p.Components))
	}
	if ctx.Working.Len() != len(m.Datasets) {
		t.Errorf("working catalog = %d datasets, want %d", ctx.Working.Len(), len(m.Datasets))
	}
	if ctx.Published.Len() != len(m.Datasets) {
		t.Errorf("published catalog = %d datasets, want %d", ctx.Published.Len(), len(m.Datasets))
	}
	// The chain's whole point: coverage rises substantially.
	if report.MessAfter.OccurrenceCoverage <= report.MessBefore.OccurrenceCoverage {
		t.Errorf("coverage did not improve: %.3f -> %.3f",
			report.MessBefore.OccurrenceCoverage, report.MessAfter.OccurrenceCoverage)
	}
	if report.MessAfter.OccurrenceCoverage < 0.9 {
		t.Errorf("final coverage = %.3f, want >= 0.9", report.MessAfter.OccurrenceCoverage)
	}
	// Coverage never decreases across steps.
	prev := report.MessBefore.OccurrenceCoverage
	for _, s := range report.Steps {
		if s.MessAfter.OccurrenceCoverage < prev-1e-9 {
			t.Errorf("step %s decreased coverage: %.3f -> %.3f",
				s.Component, prev, s.MessAfter.OccurrenceCoverage)
		}
		prev = s.MessAfter.OccurrenceCoverage
	}
	if len(p.History) != 1 {
		t.Errorf("history = %d runs", len(p.History))
	}
}

func TestChainResolvesGroundTruth(t *testing.T) {
	ctx, m := newTestContext(t, 30, 7)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Score against the generator's ground truth: translatable categories
	// must overwhelmingly land on their canonical names.
	truth := m.ByPath()
	total, correct := 0, 0
	for _, f := range ctx.Published.All() {
		d := truth[f.Path]
		for i, v := range f.Variables {
			want := d.Vars[i]
			switch want.Category {
			case semdiv.CatSynonym, semdiv.CatAbbreviation, semdiv.CatMinorVariation:
				total++
				if v.Name == want.Canonical {
					correct++
				}
			case semdiv.CatExcessive:
				if !v.Excluded {
					t.Errorf("%s: excessive %q not excluded", f.Path, v.RawName)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no translatable mess generated")
	}
	accuracy := float64(correct) / float64(total)
	if accuracy < 0.90 {
		t.Errorf("translation accuracy = %.3f (%d/%d), want >= 0.90 (residual errors concentrate in the inherently confusable fluoresNNN family)", accuracy, correct, total)
	}
}

func TestRerunIsIdempotentAndIncremental(t *testing.T) {
	ctx, _ := newTestContext(t, 15, 13)
	p := NewProcess("full", DefaultChain()...)
	r1, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before := ctx.Published.Generation()
	snapshot := ctx.Working.VariableNameCounts()

	r2, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Incremental: nothing re-parsed.
	if r2.Steps[0].Counters["parsed"] != 0 {
		t.Errorf("rerun parsed %d files, want 0", r2.Steps[0].Counters["parsed"])
	}
	if r2.Steps[0].Counters["skippedUnchanged"] != ctx.Working.Len() {
		t.Errorf("rerun skipped %d, want %d", r2.Steps[0].Counters["skippedUnchanged"], ctx.Working.Len())
	}
	// Idempotent: names unchanged.
	after := ctx.Working.VariableNameCounts()
	if len(snapshot) != len(after) {
		t.Fatalf("rerun changed distinct names: %d -> %d", len(snapshot), len(after))
	}
	for i := range snapshot {
		if snapshot[i] != after[i] {
			t.Errorf("rerun changed name %v -> %v", snapshot[i], after[i])
		}
	}
	if r2.MessAfter != r1.MessAfter {
		t.Errorf("rerun changed mess: %+v vs %+v", r2.MessAfter, r1.MessAfter)
	}
	if ctx.Published.Generation() == before {
		t.Error("publish should still bump generation on rerun")
	}
}

func TestCuratorImprovementLoop(t *testing.T) {
	ctx, _ := newTestContext(t, 30, 99)
	p := NewProcess("full", DefaultChain()...)
	r1, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	unresolved1 := r1.MessAfter.UnresolvedNames
	if unresolved1 == 0 {
		t.Skip("archive produced no residual mess at this seed")
	}
	// Curatorial activity 3: add the unresolved names to the synonym
	// table, and rule on source-context names (simulating a curator
	// consulting the ground truth).
	cls := semdiv.NewClassifier(ctx.Knowledge)
	for _, vc := range ctx.Working.VariableNameCounts() {
		switch f := cls.Classify(vc.Value); f.Category {
		case semdiv.CatUnknown, semdiv.CatAmbiguous:
			if err := ctx.Knowledge.Synonyms.Add("water_velocity", vc.Value); err != nil {
				t.Logf("curation skip %q: %v", vc.Value, err)
			}
		case semdiv.CatSourceContext:
			ctx.PendingDecisions = append(ctx.PendingDecisions,
				semdiv.Decision{RawName: vc.Value, Action: semdiv.ClarifyTo, Target: "water_temperature"})
		}
	}
	r2, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MessAfter.UnresolvedNames >= unresolved1 {
		t.Errorf("improvement did not reduce unresolved: %d -> %d",
			unresolved1, r2.MessAfter.UnresolvedNames)
	}
}

func TestCuratorDecisionsFlowThroughChain(t *testing.T) {
	ctx, _ := newTestContext(t, 21, 5)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Find an ambiguous name in the catalog (the generator injects "temp").
	hasTemp := false
	for _, vc := range ctx.Working.VariableNameCounts() {
		if vc.Value == "temp" {
			hasTemp = true
		}
	}
	if !hasTemp {
		t.Skip("no ambiguous name at this seed")
	}
	ctx.PendingDecisions = []semdiv.Decision{
		{RawName: "temp", Action: semdiv.ClarifyTo, Target: "water_temperature"},
	}
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	for _, vc := range ctx.Working.VariableNameCounts() {
		if vc.Value == "temp" {
			t.Error("clarified name still present after decision")
		}
	}
	if ctx.PendingDecisions != nil {
		t.Error("decisions not consumed")
	}
}

func TestValidateGatesPublish(t *testing.T) {
	ctx, m := newTestContext(t, 9, 3)
	ctx.ExpectedPaths = []string{"stations/never/exists.obs"}
	chain := []Component{
		ScanArchive{},
		KnownTransforms{},
		Validate{}, // strict: errors abort
		Publish{},
	}
	p := NewProcess("gated", chain...)
	_, err := p.Run(ctx)
	if err == nil {
		t.Fatal("chain should fail on validation errors")
	}
	if !strings.Contains(err.Error(), "validation failed") {
		t.Errorf("error = %v", err)
	}
	if ctx.Published.Len() != 0 {
		t.Error("publish ran despite failed validation")
	}
	if ctx.LastValidation == nil || ctx.LastValidation.OK() {
		t.Error("validation report not recorded")
	}
	// Fix the expectation: chain completes and publishes.
	ctx.ExpectedPaths = []string{m.Datasets[0].Path}
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Published.Len() == 0 {
		t.Error("publish did not run after validation passed")
	}
}

func TestDiscoveredRulesExportable(t *testing.T) {
	ctx, _ := newTestContext(t, 30, 42)
	p := NewProcess("full", DefaultChain()...)
	if _, err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if len(ctx.DiscoveredRules) == 0 {
		t.Skip("no rules discovered at this seed")
	}
	data, err := refine.ExportJSON(ctx.DiscoveredRules)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "core/mass-edit") {
		t.Error("exported rules missing mass-edit op")
	}
	back, err := refine.ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ctx.DiscoveredRules) {
		t.Errorf("round trip = %d rules, want %d", len(back), len(ctx.DiscoveredRules))
	}
}

func TestAddExternalMetadataComponent(t *testing.T) {
	ctx, _ := newTestContext(t, 6, 1)
	ext := synonym.NewTable()
	if err := ext.Add("water_temperature", "exotic_wt_name"); err != nil {
		t.Fatal(err)
	}
	comp := AddExternalMetadata{Tables: []*synonym.Table{ext}}
	step, err := comp.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if step.Counters["tablesMerged"] != 1 {
		t.Errorf("counters = %v", step.Counters)
	}
	if !ctx.Knowledge.Synonyms.Covers("exotic_wt_name") {
		t.Error("external table not merged")
	}
	// Missing file path fails loudly.
	bad := AddExternalMetadata{TablePaths: []string{"/does/not/exist.csv"}}
	if _, err := bad.Run(ctx); err == nil {
		t.Error("missing external table accepted")
	}
}

func TestMessMetric(t *testing.T) {
	ctx, _ := newTestContext(t, 9, 2)
	empty := Mess(ctx.Working, ctx.Knowledge)
	if empty.DistinctNames != 0 || empty.OccurrenceCoverage != 0 {
		t.Errorf("empty mess = %+v", empty)
	}
	if _, err := NewProcess("scan", ScanArchive{}).Run(ctx); err != nil {
		t.Fatal(err)
	}
	raw := Mess(ctx.Working, ctx.Knowledge)
	if raw.DistinctNames == 0 {
		t.Fatal("no names after scan")
	}
	if raw.CanonicalNames+raw.UnresolvedNames+raw.ExcludedNames+raw.GroupedNames != raw.DistinctNames {
		t.Errorf("mess partitions do not sum: %+v", raw)
	}
	if Mess(nil, nil).DistinctNames != 0 {
		t.Error("nil mess should be zero")
	}
}

func TestProcessStopsAtFailingComponent(t *testing.T) {
	ctx, _ := newTestContext(t, 3, 1)
	ctx.ScanConfig.Root = "/nonexistent/archive/root"
	p := NewProcess("broken", DefaultChain()...)
	report, err := p.Run(ctx)
	if err == nil {
		t.Fatal("missing archive root should fail the chain")
	}
	if len(report.Steps) != 0 {
		t.Errorf("failed first step still recorded %d steps", len(report.Steps))
	}
	if len(p.History) != 0 {
		t.Error("failed run recorded in history")
	}
}

func BenchmarkFullChain30(b *testing.B) {
	ctx, _ := newTestContext(b, 30, 42)
	p := NewProcess("bench", DefaultChain()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
