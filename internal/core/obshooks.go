package core

import (
	"time"

	"metamess/internal/obs"
)

// Write-path metric families, registered at init so /metrics exposes
// them (at zero) from process start. Wrangles are rare relative to
// queries, so the per-stage histogram lookup's registry lock is
// harmless here.
var (
	wrangleRuns = obs.Default().Counter("dnh_wrangle_runs_total",
		"Completed wrangle (process chain) runs.")
	wrangleFailures = obs.Default().Counter("dnh_wrangle_failures_total",
		"Wrangle runs aborted by a component error.")
	applyDeltaSeconds = obs.Default().Histogram("dnh_publish_stage_duration_seconds",
		"Publish sub-stage wall time in seconds.", obs.DurationBuckets,
		"stage", "apply-delta")
	journalAppendSeconds = obs.Default().Histogram("dnh_publish_stage_duration_seconds",
		"Publish sub-stage wall time in seconds.", obs.DurationBuckets,
		"stage", "journal-append")
)

// observeWrangleStage records one component pass into the per-stage
// wrangle histogram (stage = component name, e.g. scan, publish).
func observeWrangleStage(name string, d time.Duration) {
	obs.Default().Histogram("dnh_wrangle_stage_duration_seconds",
		"Wrangle component pass wall time in seconds.", obs.DurationBuckets,
		"stage", name).ObserveSeconds(d.Nanoseconds())
}
