package expr

import (
	"testing"
)

// FuzzExprParse throws hostile input at the lexer and Pratt parser.
// The properties:
//
//   - Compile never panics, whatever the bytes (errors are fine);
//   - a successfully compiled expression prints to a canonical form
//     that re-parses (parse → print → parse never dies on its own
//     output);
//   - the canonical form is a fixed point (printing the re-parsed AST
//     yields identical bytes), so printer and parser agree on every
//     construct;
//   - the original and re-parsed ASTs evaluate identically under a
//     fixed environment — same error-ness, same rendered value — so
//     the round trip preserved semantics, not just syntax.
func FuzzExprParse(f *testing.F) {
	seeds := []string{
		`value.toLowercase().replace("_", " ")`,
		`value + 1`,
		`-3.25 * (row % 7) >= 10 || !flag`,
		`if(value == "temp", "temperature", value)`,
		`splitted[0].trim()`,
		`value[0] + value[-1]`,
		`"escaped \" quote and \\ backslash and \n newline"`,
		`1 && 2 || 3 == 4 != 5 < 6`,
		`substring(value, 1, 4).toUppercase()`,
		`0.5.`,
		`((((`,
		`a.b`,
		`"unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Compile(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		c1 := e.Canonical()
		e2, err := Compile(c1)
		if err != nil {
			t.Fatalf("canonical form does not re-parse:\n src %q\ncanon %q\n err %v", src, c1, err)
		}
		c2 := e2.Canonical()
		if c1 != c2 {
			t.Fatalf("canonical form is not a fixed point:\n src %q\n  c1 %q\n  c2 %q", src, c1, c2)
		}

		env := Env{
			"value":    "Chlorophyll_ug_L",
			"row":      float64(3),
			"flag":     true,
			"splitted": []Value{"a", "b"},
		}
		v1, err1 := e.Eval(env)
		v2, err2 := e2.Eval(env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("round trip changed eval error-ness:\n src %q\ncanon %q\nerr1 %v\nerr2 %v", src, c1, err1, err2)
		}
		if err1 == nil && ToString(v1) != ToString(v2) {
			t.Fatalf("round trip changed eval result:\n src %q\ncanon %q\n  v1 %q\n  v2 %q",
				src, c1, ToString(v1), ToString(v2))
		}
	})
}
