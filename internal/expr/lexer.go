package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // operators and punctuation
	tokLParen // (
	tokRParen // )
	tokComma
	tokDot
	tokLBracket
	tokRBracket
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	runes := []rune(src)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_') {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: string(runes[start:i]), pos: start})
		case unicode.IsDigit(r) || (r == '.' && i+1 < len(runes) && unicode.IsDigit(runes[i+1])):
			start := i
			seenDot := false
			for i < len(runes) && (unicode.IsDigit(runes[i]) || (runes[i] == '.' && !seenDot)) {
				if runes[i] == '.' {
					// A dot followed by a letter is method chaining on a number
					// literal, which we do not support; stop the number here.
					if i+1 < len(runes) && !unicode.IsDigit(runes[i+1]) {
						break
					}
					seenDot = true
				}
				i++
			}
			text := string(runes[start:i])
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q at %d", text, start)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: f, pos: start})
		case r == '"' || r == '\'':
			quote := r
			i++
			var b strings.Builder
			closed := false
			for i < len(runes) {
				c := runes[i]
				if c == '\\' && i+1 < len(runes) {
					i++
					switch runes[i] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\':
						b.WriteByte('\\')
					case '\'':
						b.WriteByte('\'')
					case '"':
						b.WriteByte('"')
					default:
						b.WriteRune(runes[i])
					}
					i++
					continue
				}
				if c == quote {
					closed = true
					i++
					break
				}
				b.WriteRune(c)
				i++
			}
			if !closed {
				return nil, fmt.Errorf("unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: b.String()})
		case r == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case r == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case r == '[':
			toks = append(toks, token{kind: tokLBracket, text: "[", pos: i})
			i++
		case r == ']':
			toks = append(toks, token{kind: tokRBracket, text: "]", pos: i})
			i++
		case r == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case r == '.':
			toks = append(toks, token{kind: tokDot, text: ".", pos: i})
			i++
		case strings.ContainsRune("+-*/%<>=!&|", r):
			start := i
			i++
			// Greedily take two-char operators.
			if i < len(runes) {
				two := string(runes[start : i+1])
				switch two {
				case "==", "!=", "<=", ">=", "&&", "||":
					i++
				}
			}
			toks = append(toks, token{kind: tokOp, text: string(runes[start:i]), pos: start})
		default:
			return nil, fmt.Errorf("unexpected character %q at %d", string(r), i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(runes)})
	return toks, nil
}
