package expr

import (
	"fmt"
	"strconv"
	"strings"

	"metamess/internal/fingerprint"
	"metamess/internal/strdist"
)

// builtinFunc implements one library function over already-evaluated args.
type builtinFunc func(args []Value) (Value, error)

// builtins is the GREL-style function library. Method chaining passes the
// receiver as the first argument, so value.trim() and trim(value) are the
// same call.
var builtins = map[string]builtinFunc{
	"toLowercase": strFunc1(strings.ToLower),
	"toUppercase": strFunc1(strings.ToUpper),
	"trim":        strFunc1(strings.TrimSpace),
	"strip":       strFunc1(strings.TrimSpace),

	"toTitlecase": strFunc1(func(s string) string {
		words := strings.Fields(s)
		for i, w := range words {
			r := []rune(w)
			if len(r) > 0 {
				words[i] = strings.ToUpper(string(r[0])) + strings.ToLower(string(r[1:]))
			}
		}
		return strings.Join(words, " ")
	}),

	"replace": func(args []Value) (Value, error) {
		if err := arity("replace", args, 3); err != nil {
			return nil, err
		}
		return strings.ReplaceAll(ToString(args[0]), ToString(args[1]), ToString(args[2])), nil
	},

	"split": func(args []Value) (Value, error) {
		if err := arity("split", args, 2); err != nil {
			return nil, err
		}
		parts := strings.Split(ToString(args[0]), ToString(args[1]))
		out := make([]Value, len(parts))
		for i, p := range parts {
			out[i] = p
		}
		return out, nil
	},

	"join": func(args []Value) (Value, error) {
		if err := arity("join", args, 2); err != nil {
			return nil, err
		}
		list, ok := args[0].([]Value)
		if !ok {
			return nil, fmt.Errorf("join: first argument must be a list, got %T", args[0])
		}
		parts := make([]string, len(list))
		for i, v := range list {
			parts[i] = ToString(v)
		}
		return strings.Join(parts, ToString(args[1])), nil
	},

	"length": func(args []Value) (Value, error) {
		if err := arity("length", args, 1); err != nil {
			return nil, err
		}
		switch t := args[0].(type) {
		case string:
			return float64(len([]rune(t))), nil
		case []Value:
			return float64(len(t)), nil
		case nil:
			return float64(0), nil
		default:
			return nil, fmt.Errorf("length: unsupported type %T", args[0])
		}
	},

	"substring": func(args []Value) (Value, error) {
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("substring: want 2 or 3 arguments, got %d", len(args))
		}
		runes := []rune(ToString(args[0]))
		from, err := toInt(args[1])
		if err != nil {
			return nil, fmt.Errorf("substring: %w", err)
		}
		to := len(runes)
		if len(args) == 3 {
			to, err = toInt(args[2])
			if err != nil {
				return nil, fmt.Errorf("substring: %w", err)
			}
		}
		if from < 0 {
			from += len(runes)
		}
		if to < 0 {
			to += len(runes)
		}
		if from < 0 {
			from = 0
		}
		if to > len(runes) {
			to = len(runes)
		}
		if from > to {
			return "", nil
		}
		return string(runes[from:to]), nil
	},

	"startsWith": func(args []Value) (Value, error) {
		if err := arity("startsWith", args, 2); err != nil {
			return nil, err
		}
		return strings.HasPrefix(ToString(args[0]), ToString(args[1])), nil
	},

	"endsWith": func(args []Value) (Value, error) {
		if err := arity("endsWith", args, 2); err != nil {
			return nil, err
		}
		return strings.HasSuffix(ToString(args[0]), ToString(args[1])), nil
	},

	"contains": func(args []Value) (Value, error) {
		if err := arity("contains", args, 2); err != nil {
			return nil, err
		}
		return strings.Contains(ToString(args[0]), ToString(args[1])), nil
	},

	"indexOf": func(args []Value) (Value, error) {
		if err := arity("indexOf", args, 2); err != nil {
			return nil, err
		}
		return float64(strings.Index(ToString(args[0]), ToString(args[1]))), nil
	},

	"toNumber": func(args []Value) (Value, error) {
		if err := arity("toNumber", args, 1); err != nil {
			return nil, err
		}
		switch t := args[0].(type) {
		case float64:
			return t, nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
			if err != nil {
				return nil, fmt.Errorf("toNumber: %q is not numeric", t)
			}
			return f, nil
		case bool:
			if t {
				return float64(1), nil
			}
			return float64(0), nil
		default:
			return nil, fmt.Errorf("toNumber: unsupported type %T", args[0])
		}
	},

	"toString": func(args []Value) (Value, error) {
		if err := arity("toString", args, 1); err != nil {
			return nil, err
		}
		return ToString(args[0]), nil
	},

	"if": func(args []Value) (Value, error) {
		if err := arity("if", args, 3); err != nil {
			return nil, err
		}
		if Truthy(args[0]) {
			return args[1], nil
		}
		return args[2], nil
	},

	"coalesce": func(args []Value) (Value, error) {
		for _, a := range args {
			if a != nil && ToString(a) != "" {
				return a, nil
			}
		}
		return nil, nil
	},

	"fingerprint": strFunc1(fingerprint.Key),

	"ngramFingerprint": func(args []Value) (Value, error) {
		if err := arity("ngramFingerprint", args, 2); err != nil {
			return nil, err
		}
		n, err := toInt(args[1])
		if err != nil {
			return nil, fmt.Errorf("ngramFingerprint: %w", err)
		}
		return fingerprint.NGram(ToString(args[0]), n), nil
	},

	"phonetic": strFunc1(fingerprint.Phonetic),

	"levenshtein": func(args []Value) (Value, error) {
		if err := arity("levenshtein", args, 2); err != nil {
			return nil, err
		}
		return float64(strdist.Levenshtein(ToString(args[0]), ToString(args[1]))), nil
	},

	"reverse": strFunc1(func(s string) string {
		r := []rune(s)
		for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
			r[i], r[j] = r[j], r[i]
		}
		return string(r)
	}),
}

// strFunc1 adapts a string->string function into a builtin.
func strFunc1(f func(string) string) builtinFunc {
	return func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("want 1 argument, got %d", len(args))
		}
		return f(ToString(args[0])), nil
	}
}

func arity(name string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%s: want %d arguments, got %d", name, n, len(args))
	}
	return nil
}

func toInt(v Value) (int, error) {
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("want a number, got %T", v)
	}
	return int(f), nil
}

// Functions returns the sorted names of all builtin functions, for
// documentation and for validating rule files.
func Functions() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	// Insertion sort keeps this dependency-free and the list is small.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j-1] > names[j]; j-- {
			names[j-1], names[j] = names[j], names[j-1]
		}
	}
	return names
}
