package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

func evalStr(t *testing.T, src string, env Env) string {
	t.Helper()
	e, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	s, err := e.EvalString(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return s
}

func evalVal(t *testing.T, src string, env Env) Value {
	t.Helper()
	e, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestLiterals(t *testing.T) {
	cases := map[string]string{
		`"hello"`: "hello",
		`'world'`: "world",
		`42`:      "42",
		`3.5`:     "3.5",
		`true`:    "true",
		`false`:   "false",
		`null`:    "",
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestValueBinding(t *testing.T) {
	env := Env{"value": "Air_Temp"}
	if got := evalStr(t, "value", env); got != "Air_Temp" {
		t.Errorf("value = %q", got)
	}
	if _, err := MustCompile("missing").Eval(Env{}); err == nil {
		t.Error("unknown identifier should error")
	}
}

func TestMethodChaining(t *testing.T) {
	env := Env{"value": "  Air_Temperature  "}
	got := evalStr(t, `value.trim().toLowercase().replace("_", " ")`, env)
	if got != "air temperature" {
		t.Errorf("chain = %q, want %q", got, "air temperature")
	}
}

func TestFunctionCallEquivalence(t *testing.T) {
	env := Env{"value": "ABC"}
	a := evalStr(t, `toLowercase(value)`, env)
	b := evalStr(t, `value.toLowercase()`, env)
	if a != b || a != "abc" {
		t.Errorf("call forms disagree: %q vs %q", a, b)
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]string{
		`1 + 2 * 3`:     "7",
		`(1 + 2) * 3`:   "9",
		`10 / 4`:        "2.5",
		`7 % 3`:         "1",
		`-5 + 2`:        "-3",
		`2 * 3 + 4 * 5`: "26",
		`10 - 2 - 3`:    "5", // left associative
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := MustCompile("1/0").Eval(nil); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := MustCompile("1%0").Eval(nil); err == nil {
		t.Error("modulo by zero should error")
	}
}

func TestStringConcat(t *testing.T) {
	env := Env{"value": "temp"}
	if got := evalStr(t, `"water_" + value`, env); got != "water_temp" {
		t.Errorf("concat = %q", got)
	}
	if got := evalStr(t, `value + 42`, env); got != "temp42" {
		t.Errorf("mixed concat = %q", got)
	}
}

func TestComparisons(t *testing.T) {
	cases := map[string]Value{
		`1 < 2`:            true,
		`2 <= 2`:           true,
		`3 > 4`:            false,
		`"abc" == "abc"`:   true,
		`"abc" != "abd"`:   true,
		`"a" < "b"`:        true,
		`1 == 1 && 2 == 2`: true,
		`1 == 2 || 2 == 2`: true,
		`!(1 == 1)`:        false,
	}
	for src, want := range cases {
		if got := evalVal(t, src, nil); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right side references an unknown identifier; short-circuiting
	// must prevent evaluation.
	if got := evalVal(t, `false && boom`, nil); got != false {
		t.Errorf("short-circuit && = %v", got)
	}
	if got := evalVal(t, `true || boom`, nil); got != true {
		t.Errorf("short-circuit || = %v", got)
	}
}

func TestSplitJoinIndex(t *testing.T) {
	env := Env{"value": "a_b_c"}
	if got := evalStr(t, `value.split("_")[1]`, env); got != "b" {
		t.Errorf("split index = %q", got)
	}
	if got := evalStr(t, `value.split("_")[-1]`, env); got != "c" {
		t.Errorf("negative index = %q", got)
	}
	if got := evalStr(t, `join(split(value, "_"), "-")`, env); got != "a-b-c" {
		t.Errorf("join = %q", got)
	}
	if got := evalStr(t, `value.split("_").length()`, env); got != "3" {
		t.Errorf("length = %q", got)
	}
}

func TestSubstring(t *testing.T) {
	env := Env{"value": "temperature"}
	cases := map[string]string{
		`value.substring(0, 4)`:  "temp",
		`value.substring(4)`:     "erature",
		`value.substring(-4)`:    "ture",
		`value.substring(0, -1)`: "temperatur",
		`value.substring(8, 2)`:  "",
	}
	for src, want := range cases {
		if got := evalStr(t, src, env); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestStringPredicates(t *testing.T) {
	env := Env{"value": "air_temperature"}
	cases := map[string]Value{
		`value.startsWith("air")`:  true,
		`value.endsWith("ture")`:   true,
		`value.contains("_temp")`:  true,
		`value.contains("water")`:  false,
		`value.indexOf("temp")`:    float64(4),
		`value.indexOf("missing")`: float64(-1),
	}
	for src, want := range cases {
		if got := evalVal(t, src, env); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestConditional(t *testing.T) {
	env := Env{"value": "qa_level"}
	got := evalStr(t, `if(value.startsWith("qa_"), "exclude", "keep")`, env)
	if got != "exclude" {
		t.Errorf("if = %q", got)
	}
	got = evalStr(t, `if(value.startsWith("xx_"), "exclude", "keep")`, env)
	if got != "keep" {
		t.Errorf("if = %q", got)
	}
}

func TestCoalesce(t *testing.T) {
	env := Env{"a": nil, "b": "", "c": "x"}
	if got := evalStr(t, `coalesce(a, b, c)`, env); got != "x" {
		t.Errorf("coalesce = %q", got)
	}
	if got := evalVal(t, `coalesce(a, b)`, env); got != nil {
		t.Errorf("all-empty coalesce = %v, want nil", got)
	}
}

func TestNumericConversions(t *testing.T) {
	if got := evalVal(t, `toNumber("3.5") * 2`, nil); got != float64(7) {
		t.Errorf("toNumber = %v", got)
	}
	if _, err := MustCompile(`toNumber("abc")`).Eval(nil); err == nil {
		t.Error("toNumber on non-numeric should error")
	}
	if got := evalStr(t, `toString(42)`, nil); got != "42" {
		t.Errorf("toString = %q", got)
	}
}

func TestFingerprintBuiltins(t *testing.T) {
	env := Env{"value": "Air_Temperature"}
	if got := evalStr(t, `value.fingerprint()`, env); got != "air temperature" {
		t.Errorf("fingerprint = %q", got)
	}
	if got := evalStr(t, `value.phonetic()`, env); got == "" {
		t.Error("phonetic produced empty code")
	}
	if got := evalVal(t, `levenshtein("abc", "abd")`, nil); got != float64(1) {
		t.Errorf("levenshtein = %v", got)
	}
	a := evalStr(t, `ngramFingerprint("air temp", 2)`, nil)
	b := evalStr(t, `ngramFingerprint("airtemp", 2)`, nil)
	if a != b {
		t.Errorf("ngram fingerprints differ: %q vs %q", a, b)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		`1 +`,
		`foo(`,
		`value.`,
		`(1 + 2`,
		`value..trim()`,
		`[1]`,
		`1 2`,
		`@`,
		`value.9()`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		`nosuchfn(1)`,
		`"a" - "b"`,
		`"a" < 1`,
		`value[0]`,        // value unbound
		`split("a,b")`,    // wrong arity
		`join("ab", ",")`, // join on non-list
	}
	for _, src := range bad {
		e, err := Compile(src)
		if err != nil {
			continue // compile-time rejection also acceptable
		}
		if _, err := e.Eval(Env{}); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestIndexOutOfRange(t *testing.T) {
	env := Env{"value": "abc"}
	if _, err := MustCompile(`value[10]`).Eval(env); err == nil {
		t.Error("out-of-range index should error")
	}
	if got := evalStr(t, `value[0]`, env); got != "a" {
		t.Errorf("string index = %q", got)
	}
}

func TestEvalIsPure(t *testing.T) {
	env := Env{"value": "AbC"}
	e := MustCompile(`value.toLowercase()`)
	for i := 0; i < 3; i++ {
		got, err := e.EvalString(env)
		if err != nil || got != "abc" {
			t.Fatalf("iteration %d: %q, %v", i, got, err)
		}
	}
	if env["value"] != "AbC" {
		t.Error("evaluation mutated the environment")
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{nil, false}, {false, false}, {"", false}, {float64(0), false},
		{[]Value{}, false},
		{true, true}, {"x", true}, {float64(1), true}, {[]Value{nil}, true},
	}
	for _, c := range cases {
		if got := Truthy(c.v); got != c.want {
			t.Errorf("Truthy(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestFunctionsListSorted(t *testing.T) {
	names := Functions()
	if len(names) < 15 {
		t.Fatalf("expected a rich builtin library, got %d functions", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Functions() not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func TestCompileNeverPanics(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 80 {
			s = s[:80]
		}
		// Compile must return an error, never panic, on arbitrary input.
		_, _ = Compile(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripLowercaseProperty(t *testing.T) {
	e := MustCompile(`value.toLowercase()`)
	f := func(s string) bool {
		if len(s) > 60 {
			s = s[:60]
		}
		got, err := e.EvalString(Env{"value": s})
		return err == nil && got == strings.ToLower(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(`value.trim().toLowercase().replace("_", " ")`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalChain(b *testing.B) {
	e := MustCompile(`value.trim().toLowercase().replace("_", " ")`)
	env := Env{"value": "  Air_Temperature  "}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvalString(env); err != nil {
			b.Fatal(err)
		}
	}
}
