// Package expr implements a small expression language in the style of
// Google Refine's GREL, used by text-transform operations in the refine
// engine. Expressions operate on the current cell ("value") plus any
// bindings the caller provides, support method-style chaining
// (value.toLowercase().replace("_", " ")), arithmetic, comparisons,
// boolean logic, and a library of string functions.
//
// The language is deliberately side-effect free: evaluating an expression
// never mutates the environment, so transformation rules that embed
// expressions replay deterministically.
package expr

import (
	"fmt"
	"strings"
)

// Value is the dynamic type of expression results: nil, bool, float64,
// string, or []Value.
type Value interface{}

// Env supplies variable bindings during evaluation. "value" conventionally
// holds the current cell.
type Env map[string]Value

// Expr is a compiled expression ready for repeated evaluation.
type Expr struct {
	src  string
	root node
}

// Compile parses source into an executable expression.
func Compile(source string) (*Expr, error) {
	toks, err := lex(source)
	if err != nil {
		return nil, fmt.Errorf("expr: %w", err)
	}
	p := &parser{toks: toks}
	root, err := p.parseExpression(0)
	if err != nil {
		return nil, fmt.Errorf("expr: %w", err)
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("expr: unexpected trailing input at %q", p.peek().text)
	}
	return &Expr{src: source, root: root}, nil
}

// MustCompile is Compile that panics on error, for static expressions.
func MustCompile(source string) *Expr {
	e, err := Compile(source)
	if err != nil {
		panic(err)
	}
	return e
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// Eval evaluates the expression under env.
func (e *Expr) Eval(env Env) (Value, error) {
	return e.root.eval(env)
}

// EvalString evaluates and coerces the result to a string: nil becomes "",
// everything else formats via ToString.
func (e *Expr) EvalString(env Env) (string, error) {
	v, err := e.Eval(env)
	if err != nil {
		return "", err
	}
	return ToString(v), nil
}

// ToString renders a Value the way cell storage expects: nil is empty,
// floats drop trailing zeros, lists join with commas.
func ToString(v Value) string {
	switch t := v.(type) {
	case nil:
		return ""
	case string:
		return t
	case bool:
		if t {
			return "true"
		}
		return "false"
	case float64:
		return formatFloat(t)
	case []Value:
		parts := make([]string, len(t))
		for i, e := range t {
			parts[i] = ToString(e)
		}
		return strings.Join(parts, ",")
	default:
		return fmt.Sprint(v)
	}
}

func formatFloat(f float64) string {
	if f == float64(int64(f)) && f < 1e15 && f > -1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// Truthy reports the boolean interpretation of a value: false/nil/""/0
// are false, everything else true.
func Truthy(v Value) bool {
	switch t := v.(type) {
	case nil:
		return false
	case bool:
		return t
	case string:
		return t != ""
	case float64:
		return t != 0
	case []Value:
		return len(t) > 0
	default:
		return true
	}
}
