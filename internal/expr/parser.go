package expr

import "fmt"

// node is a parsed AST node.
type node interface {
	eval(Env) (Value, error)
}

type literalNode struct{ val Value }

func (n literalNode) eval(Env) (Value, error) { return n.val, nil }

type identNode struct{ name string }

func (n identNode) eval(env Env) (Value, error) {
	switch n.name {
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "null", "nil":
		return nil, nil
	}
	if v, ok := env[n.name]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("unknown identifier %q", n.name)
}

type unaryNode struct {
	op    string
	child node
}

func (n unaryNode) eval(env Env) (Value, error) {
	v, err := n.child.eval(env)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case "!":
		return !Truthy(v), nil
	case "-":
		f, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("unary - needs a number, got %T", v)
		}
		return -f, nil
	}
	return nil, fmt.Errorf("unknown unary operator %q", n.op)
}

type binaryNode struct {
	op          string
	left, right node
}

func (n binaryNode) eval(env Env) (Value, error) {
	// Short-circuit logical operators.
	if n.op == "&&" || n.op == "||" {
		l, err := n.left.eval(env)
		if err != nil {
			return nil, err
		}
		if n.op == "&&" && !Truthy(l) {
			return false, nil
		}
		if n.op == "||" && Truthy(l) {
			return true, nil
		}
		r, err := n.right.eval(env)
		if err != nil {
			return nil, err
		}
		return Truthy(r), nil
	}
	l, err := n.left.eval(env)
	if err != nil {
		return nil, err
	}
	r, err := n.right.eval(env)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case "+":
		if lf, ok := l.(float64); ok {
			if rf, ok := r.(float64); ok {
				return lf + rf, nil
			}
		}
		// String concatenation for any mix involving non-numbers.
		return ToString(l) + ToString(r), nil
	case "-", "*", "/", "%":
		lf, lok := l.(float64)
		rf, rok := r.(float64)
		if !lok || !rok {
			return nil, fmt.Errorf("operator %q needs numbers, got %T and %T", n.op, l, r)
		}
		switch n.op {
		case "-":
			return lf - rf, nil
		case "*":
			return lf * rf, nil
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("division by zero")
			}
			return lf / rf, nil
		case "%":
			if rf == 0 {
				return nil, fmt.Errorf("modulo by zero")
			}
			return float64(int64(lf) % int64(rf)), nil
		}
	case "==":
		return equalValues(l, r), nil
	case "!=":
		return !equalValues(l, r), nil
	case "<", ">", "<=", ">=":
		return compareValues(n.op, l, r)
	}
	return nil, fmt.Errorf("unknown operator %q", n.op)
}

func equalValues(l, r Value) bool {
	if lf, ok := l.(float64); ok {
		if rf, ok := r.(float64); ok {
			return lf == rf
		}
	}
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			return ls == rs
		}
	}
	if lb, ok := l.(bool); ok {
		if rb, ok := r.(bool); ok {
			return lb == rb
		}
	}
	if l == nil && r == nil {
		return true
	}
	return false
}

func compareValues(op string, l, r Value) (Value, error) {
	var cmp int
	if lf, lok := l.(float64); lok {
		rf, rok := r.(float64)
		if !rok {
			return nil, fmt.Errorf("cannot compare %T with %T", l, r)
		}
		switch {
		case lf < rf:
			cmp = -1
		case lf > rf:
			cmp = 1
		}
	} else if ls, lok := l.(string); lok {
		rs, rok := r.(string)
		if !rok {
			return nil, fmt.Errorf("cannot compare %T with %T", l, r)
		}
		switch {
		case ls < rs:
			cmp = -1
		case ls > rs:
			cmp = 1
		}
	} else {
		return nil, fmt.Errorf("cannot order %T values", l)
	}
	switch op {
	case "<":
		return cmp < 0, nil
	case ">":
		return cmp > 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">=":
		return cmp >= 0, nil
	}
	return nil, fmt.Errorf("unknown comparison %q", op)
}

type callNode struct {
	name string
	args []node
}

func (n callNode) eval(env Env) (Value, error) {
	fn, ok := builtins[n.name]
	if !ok {
		return nil, fmt.Errorf("unknown function %q", n.name)
	}
	args := make([]Value, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn(args)
}

type indexNode struct {
	target, index node
	end           node // non-nil for slice [a:b]; not produced currently
}

func (n indexNode) eval(env Env) (Value, error) {
	t, err := n.target.eval(env)
	if err != nil {
		return nil, err
	}
	idxV, err := n.index.eval(env)
	if err != nil {
		return nil, err
	}
	idxF, ok := idxV.(float64)
	if !ok {
		return nil, fmt.Errorf("index must be a number, got %T", idxV)
	}
	idx := int(idxF)
	switch tv := t.(type) {
	case []Value:
		if idx < 0 {
			idx += len(tv)
		}
		if idx < 0 || idx >= len(tv) {
			return nil, fmt.Errorf("index %d out of range (len %d)", idx, len(tv))
		}
		return tv[idx], nil
	case string:
		runes := []rune(tv)
		if idx < 0 {
			idx += len(runes)
		}
		if idx < 0 || idx >= len(runes) {
			return nil, fmt.Errorf("index %d out of range (len %d)", idx, len(runes))
		}
		return string(runes[idx]), nil
	default:
		return nil, fmt.Errorf("cannot index %T", t)
	}
}

// parser is a Pratt parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEnd() bool { return p.peek().kind == tokEOF }
func (p *parser) backup()     { p.pos-- }

func precedence(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=":
		return 3
	case "<", ">", "<=", ">=":
		return 4
	case "+", "-":
		return 5
	case "*", "/", "%":
		return 6
	}
	return 0
}

func (p *parser) parseExpression(minPrec int) (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return left, nil
		}
		prec := precedence(t.text)
		if prec == 0 || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseExpression(prec + 1)
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: t.text, left: left, right: right}
	}
}

func (p *parser) parseUnary() (node, error) {
	t := p.peek()
	if t.kind == tokOp && (t.text == "!" || t.text == "-") {
		p.next()
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return p.parsePostfix(unaryNode{op: t.text, child: child})
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	t := p.next()
	var base node
	switch t.kind {
	case tokNumber:
		base = literalNode{val: t.num}
	case tokString:
		base = literalNode{val: t.text}
	case tokIdent:
		if p.peek().kind == tokLParen {
			p.next() // consume (
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			base = callNode{name: t.text, args: args}
		} else {
			base = identNode{name: t.text}
		}
	case tokLParen:
		inner, err := p.parseExpression(0)
		if err != nil {
			return nil, err
		}
		if p.next().kind != tokRParen {
			return nil, fmt.Errorf("missing closing parenthesis")
		}
		base = inner
	default:
		return nil, fmt.Errorf("unexpected token %q", t.text)
	}
	return p.parsePostfix(base)
}

// parsePostfix handles method chaining a.f(x) => f(a, x) and indexing a[i].
func (p *parser) parsePostfix(base node) (node, error) {
	for {
		switch p.peek().kind {
		case tokDot:
			p.next()
			name := p.next()
			if name.kind != tokIdent {
				return nil, fmt.Errorf("expected method name after '.', got %q", name.text)
			}
			if p.peek().kind != tokLParen {
				return nil, fmt.Errorf("expected '(' after method %q", name.text)
			}
			p.next()
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			base = callNode{name: name.text, args: append([]node{base}, args...)}
		case tokLBracket:
			p.next()
			idx, err := p.parseExpression(0)
			if err != nil {
				return nil, err
			}
			if p.next().kind != tokRBracket {
				return nil, fmt.Errorf("missing closing bracket")
			}
			base = indexNode{target: base, index: idx}
		default:
			return base, nil
		}
	}
}

func (p *parser) parseArgs() ([]node, error) {
	var args []node
	if p.peek().kind == tokRParen {
		p.next()
		return args, nil
	}
	for {
		a, err := p.parseExpression(0)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		switch t := p.next(); t.kind {
		case tokComma:
			continue
		case tokRParen:
			return args, nil
		default:
			return nil, fmt.Errorf("expected ',' or ')' in arguments, got %q", t.text)
		}
	}
}
