package expr

import (
	"strconv"
	"strings"
)

// Canonical renders the compiled AST back to source in a normal form:
// every composite expression fully parenthesized, method chains
// desugared to plain calls (a.f(x) → f(a, x)), string literals
// re-quoted and re-escaped, and numbers printed in plain decimal (the
// only number syntax the lexer accepts). The output re-parses to an
// identical AST, and Canonical is a fixed point: compiling the
// canonical form and printing it again yields the same bytes. That
// closure is the round-trip property FuzzExprParse drives with hostile
// inputs — any printer/parser disagreement surfaces as a diff there.
func (e *Expr) Canonical() string {
	var b strings.Builder
	printNode(&b, e.root)
	return b.String()
}

func printNode(b *strings.Builder, n node) {
	switch t := n.(type) {
	case literalNode:
		switch v := t.val.(type) {
		case float64:
			b.WriteString(canonicalNumber(v))
		case string:
			b.WriteString(canonicalString(v))
		default:
			// The parser only builds number and string literals; anything
			// else would be a new node kind this printer must learn.
			panic("expr: unprintable literal")
		}
	case identNode:
		b.WriteString(t.name)
	case unaryNode:
		b.WriteByte('(')
		b.WriteString(t.op)
		printNode(b, t.child)
		b.WriteByte(')')
	case binaryNode:
		b.WriteByte('(')
		printNode(b, t.left)
		b.WriteByte(' ')
		b.WriteString(t.op)
		b.WriteByte(' ')
		printNode(b, t.right)
		b.WriteByte(')')
	case callNode:
		b.WriteString(t.name)
		b.WriteByte('(')
		for i, a := range t.args {
			if i > 0 {
				b.WriteString(", ")
			}
			printNode(b, a)
		}
		b.WriteByte(')')
	case indexNode:
		printNode(b, t.target)
		b.WriteByte('[')
		printNode(b, t.index)
		b.WriteByte(']')
	default:
		panic("expr: unprintable node")
	}
}

// canonicalNumber prints a float the lexer can read back to the same
// value: plain decimal only — the lexer has no exponent or sign syntax
// (negative values appear as unary minus, so literals are always
// non-negative). Integral values print without a fraction; everything
// else uses the shortest no-exponent decimal that round-trips.
func canonicalNumber(f float64) string {
	if f == float64(int64(f)) && f < 1e15 && f > -1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// canonicalString re-quotes a string literal with double quotes,
// escaping exactly what the lexer's escape table understands.
func canonicalString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
