// Package synonym implements the curated thesaurus at the heart of the
// wrangling process: preferred variable names, their alternate terms, and
// translation tables ("often exists as a translation table" — poster).
//
// The table answers two questions the poster's curatorial activities
// need: (1) what is the preferred name for a harvested term, used by the
// "perform known transformations" component, and (2) is a harvested term
// covered at all, used by the validation check "all harvested variable
// names occur in the current synonym table as preferred or alternate
// terms".
package synonym

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"metamess/internal/fingerprint"
	"metamess/internal/refine"
)

// Status classifies how a term resolved against the table.
type Status int

// Resolution statuses.
const (
	Unknown   Status = iota // term not in the table
	Preferred               // term is itself a preferred name
	Alternate               // term is an alternate of some preferred name
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Preferred:
		return "preferred"
	case Alternate:
		return "alternate"
	default:
		return "unknown"
	}
}

// Table is a synonym table mapping alternate terms to preferred names.
// Matching is insensitive to case, punctuation, and underscore/space
// differences (fingerprint normalization), which keeps curators from
// having to enumerate trivial variants.
type Table struct {
	preferred map[string]string // normalized preferred -> display form
	alternate map[string]string // normalized alternate -> preferred display form
	// altDisplay preserves the first display form seen for each alternate
	// key, so reverse expansion can reproduce surface forms like "ATastn".
	altDisplay map[string]string
}

// NewTable returns an empty synonym table.
func NewTable() *Table {
	return &Table{
		preferred:  make(map[string]string),
		alternate:  make(map[string]string),
		altDisplay: make(map[string]string),
	}
}

// Add registers a preferred name with zero or more alternates. Adding an
// existing preferred name extends its alternates. An alternate equal to
// the preferred name is ignored. Conflicting alternates (already mapped
// to a different preferred name) are rejected so silent remaps cannot
// corrupt the table.
func (t *Table) Add(preferred string, alternates ...string) error {
	pk := norm(preferred)
	if pk == "" {
		return fmt.Errorf("synonym: empty preferred name")
	}
	if existing, ok := t.alternate[pk]; ok {
		return fmt.Errorf("synonym: %q is already an alternate of %q", preferred, existing)
	}
	t.preferred[pk] = preferred
	for _, a := range alternates {
		ak := norm(a)
		if ak == "" || ak == pk {
			continue
		}
		if _, isPref := t.preferred[ak]; isPref {
			return fmt.Errorf("synonym: %q is already a preferred name", a)
		}
		if existing, ok := t.alternate[ak]; ok && existing != preferred {
			return fmt.Errorf("synonym: %q already maps to %q, not %q", a, existing, preferred)
		}
		t.alternate[ak] = preferred
		if _, seen := t.altDisplay[ak]; !seen {
			t.altDisplay[ak] = a
		}
	}
	return nil
}

// Resolve maps a raw term to its preferred name and resolution status.
// Unknown terms come back unchanged.
func (t *Table) Resolve(raw string) (string, Status) {
	k := norm(raw)
	if disp, ok := t.preferred[k]; ok {
		return disp, Preferred
	}
	if pref, ok := t.alternate[k]; ok {
		return pref, Alternate
	}
	return raw, Unknown
}

// Covers reports whether the term occurs as preferred or alternate — the
// poster's synonym-coverage validation check.
func (t *Table) Covers(raw string) bool {
	_, st := t.Resolve(raw)
	return st != Unknown
}

// PreferredNames returns all preferred display names, sorted.
func (t *Table) PreferredNames() []string {
	out := make([]string, 0, len(t.preferred))
	for _, disp := range t.preferred {
		out = append(out, disp)
	}
	sort.Strings(out)
	return out
}

// AlternatesOf returns the alternates recorded for a preferred name, in
// their original display forms, sorted for determinism.
func (t *Table) AlternatesOf(preferred string) []string {
	var out []string
	for ak, pref := range t.alternate {
		if norm(pref) == norm(preferred) {
			disp := t.altDisplay[ak]
			if disp == "" {
				disp = ak
			}
			out = append(out, disp)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of preferred names.
func (t *Table) Len() int { return len(t.preferred) }

// AlternateCount returns the number of alternate mappings.
func (t *Table) AlternateCount() int { return len(t.alternate) }

// Merge folds another table into this one; conflicts abort with an error
// and leave already-merged entries in place (the caller decides whether
// partial merges matter; the wrangling chain treats any error as fatal).
func (t *Table) Merge(o *Table) error {
	for pk, disp := range o.preferred {
		if existing, ok := t.alternate[pk]; ok {
			return fmt.Errorf("synonym: merge: %q is preferred in one table, alternate of %q in the other", disp, existing)
		}
		t.preferred[pk] = disp
	}
	for ak, pref := range o.alternate {
		if _, isPref := t.preferred[ak]; isPref && norm(pref) != ak {
			return fmt.Errorf("synonym: merge: %q is alternate in one table, preferred in the other", ak)
		}
		if existing, ok := t.alternate[ak]; ok && norm(existing) != norm(pref) {
			return fmt.Errorf("synonym: merge: alternate %q maps to both %q and %q", ak, existing, pref)
		}
		t.alternate[ak] = pref
		if disp, ok := o.altDisplay[ak]; ok {
			if _, seen := t.altDisplay[ak]; !seen {
				t.altDisplay[ak] = disp
			}
		}
	}
	return nil
}

// ToMassEdit builds the "perform known transformations" rule: one mass
// edit over the named column translating every known alternate (by its
// literal display forms seen in values) to its preferred name. Values
// already preferred are untouched. Returns nil when no value needs
// translating.
func (t *Table) ToMassEdit(column string, values []string) *refine.MassEdit {
	byPreferred := make(map[string][]string)
	seen := make(map[string]bool)
	for _, v := range values {
		if seen[v] {
			continue
		}
		seen[v] = true
		pref, st := t.Resolve(v)
		if st == Alternate || (st == Preferred && v != pref) {
			byPreferred[pref] = append(byPreferred[pref], v)
		}
	}
	if len(byPreferred) == 0 {
		return nil
	}
	prefs := make([]string, 0, len(byPreferred))
	for p := range byPreferred {
		prefs = append(prefs, p)
	}
	sort.Strings(prefs)
	var edits []refine.Edit
	for _, p := range prefs {
		from := byPreferred[p]
		sort.Strings(from)
		edits = append(edits, refine.Edit{From: from, To: p})
	}
	return &refine.MassEdit{
		Desc:       fmt.Sprintf("Translate %d known terms in column %s to preferred names", len(edits), column),
		Engine:     refine.EngineConfig{Mode: "row-based"},
		ColumnName: column,
		Expression: "value",
		Edits:      edits,
	}
}

// WriteCSV exports the table as a two-column translation table
// (preferred, alternate), one row per alternate plus one row per
// preferred name with an empty alternate, sorted for stable diffs.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"preferred", "alternate"}); err != nil {
		return fmt.Errorf("synonym: write header: %w", err)
	}
	for _, pref := range t.PreferredNames() {
		alts := t.AlternatesOf(pref)
		if len(alts) == 0 {
			if err := cw.Write([]string{pref, ""}); err != nil {
				return fmt.Errorf("synonym: write row: %w", err)
			}
			continue
		}
		for _, a := range alts {
			if err := cw.Write([]string{pref, a}); err != nil {
				return fmt.Errorf("synonym: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports a translation table written by WriteCSV or assembled
// by hand: header "preferred,alternate", then one mapping per row.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("synonym: read header: %w", err)
	}
	if len(header) < 2 || header[0] != "preferred" || header[1] != "alternate" {
		return nil, fmt.Errorf("synonym: bad header %v, want [preferred alternate]", header)
	}
	t := NewTable()
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("synonym: line %d: %w", line, err)
		}
		if rec[1] == "" {
			err = t.Add(rec[0])
		} else {
			err = t.Add(rec[0], rec[1])
		}
		if err != nil {
			return nil, fmt.Errorf("synonym: line %d: %w", line, err)
		}
	}
}

// norm produces the matching key: lower-cased word tokens joined with no
// separator, so "AIR TEMP", "air-temp", and "airtemp" all collide while
// token order is preserved ("temperature air" stays distinct).
func norm(s string) string { return strings.Join(fingerprint.Tokens(s), "") }
