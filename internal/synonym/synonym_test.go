package synonym

import (
	"bytes"
	"strings"
	"testing"

	"metamess/internal/table"
)

func TestAddAndResolve(t *testing.T) {
	tb := NewTable()
	if err := tb.Add("air_temperature", "airtemp", "ATastn", "temperature of air"); err != nil {
		t.Fatal(err)
	}
	got, st := tb.Resolve("airtemp")
	if got != "air_temperature" || st != Alternate {
		t.Errorf("Resolve(airtemp) = %q, %v", got, st)
	}
	got, st = tb.Resolve("air_temperature")
	if got != "air_temperature" || st != Preferred {
		t.Errorf("Resolve(preferred) = %q, %v", got, st)
	}
	got, st = tb.Resolve("mystery")
	if got != "mystery" || st != Unknown {
		t.Errorf("Resolve(unknown) = %q, %v", got, st)
	}
}

func TestResolveNormalization(t *testing.T) {
	tb := NewTable()
	if err := tb.Add("air_temperature", "airtemp"); err != nil {
		t.Fatal(err)
	}
	// Case, punctuation, and separator variants all resolve.
	for _, v := range []string{"AirTemp", "AIR TEMP", "air-temp", "Air_Temperature"} {
		if !tb.Covers(v) {
			t.Errorf("Covers(%q) = false", v)
		}
	}
}

func TestAddConflicts(t *testing.T) {
	tb := NewTable()
	if err := tb.Add("water_temperature", "wtemp"); err != nil {
		t.Fatal(err)
	}
	// Same alternate cannot map to a different preferred name.
	if err := tb.Add("air_temperature", "wtemp"); err == nil {
		t.Error("conflicting alternate accepted")
	}
	// An existing preferred name cannot become an alternate.
	if err := tb.Add("temperature", "water_temperature"); err == nil {
		t.Error("preferred-as-alternate accepted")
	}
	// A preferred name cannot be added if it is already an alternate.
	if err := tb.Add("wtemp", "x"); err == nil {
		t.Error("alternate-as-preferred accepted")
	}
	// Re-adding the same mapping is fine (idempotent curation).
	if err := tb.Add("water_temperature", "wtemp"); err != nil {
		t.Errorf("idempotent add failed: %v", err)
	}
	if err := tb.Add(""); err == nil {
		t.Error("empty preferred accepted")
	}
}

func TestSelfAlternateIgnored(t *testing.T) {
	tb := NewTable()
	if err := tb.Add("salinity", "salinity", "SALINITY"); err != nil {
		t.Fatal(err)
	}
	if tb.AlternateCount() != 0 {
		t.Errorf("self-alternates recorded: %d", tb.AlternateCount())
	}
}

func TestPreferredNamesAndAlternatesOf(t *testing.T) {
	tb := NewTable()
	_ = tb.Add("salinity", "salt", "psu_val")
	_ = tb.Add("air_temperature", "airtemp")
	names := tb.PreferredNames()
	if len(names) != 2 || names[0] != "air_temperature" || names[1] != "salinity" {
		t.Errorf("PreferredNames = %v", names)
	}
	alts := tb.AlternatesOf("salinity")
	if len(alts) != 2 {
		t.Errorf("AlternatesOf = %v", alts)
	}
	if len(tb.AlternatesOf("nope")) != 0 {
		t.Error("alternates of unknown name should be empty")
	}
}

func TestMerge(t *testing.T) {
	a := NewTable()
	_ = a.Add("salinity", "salt")
	b := NewTable()
	_ = b.Add("salinity", "psu_val")
	_ = b.Add("turbidity", "turb")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Errorf("merged Len = %d", a.Len())
	}
	if got, st := a.Resolve("psu_val"); got != "salinity" || st != Alternate {
		t.Errorf("merged Resolve = %q, %v", got, st)
	}

	// Conflicting merge fails.
	c := NewTable()
	_ = c.Add("conductivity", "salt") // salt already -> salinity
	if err := a.Merge(c); err == nil {
		t.Error("conflicting merge accepted")
	}
}

func TestToMassEdit(t *testing.T) {
	tb := NewTable()
	_ = tb.Add("air_temperature", "airtemp", "ATastn")
	_ = tb.Add("salinity", "salt")
	values := []string{"airtemp", "ATastn", "salinity", "unknown_thing", "airtemp"}
	op := tb.ToMassEdit("field", values)
	if op == nil {
		t.Fatal("nil op")
	}
	if len(op.Edits) != 1 {
		t.Fatalf("edits = %+v, want 1 group (only air_temperature needs edits)", op.Edits)
	}
	if op.Edits[0].To != "air_temperature" || len(op.Edits[0].From) != 2 {
		t.Errorf("edit = %+v", op.Edits[0])
	}

	grid := table.MustNew("field")
	for _, v := range values {
		_ = grid.AppendRow(v)
	}
	res, err := op.Apply(grid)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 3 {
		t.Errorf("changed = %d, want 3", res.CellsChanged)
	}
	if v, _ := grid.Cell(3, "field"); v != "unknown_thing" {
		t.Errorf("unknown value touched: %q", v)
	}
}

func TestToMassEditNoWork(t *testing.T) {
	tb := NewTable()
	_ = tb.Add("salinity")
	if op := tb.ToMassEdit("field", []string{"salinity", "unknown"}); op != nil {
		t.Errorf("expected nil op, got %+v", op)
	}
}

func TestToMassEditCaseVariantOfPreferred(t *testing.T) {
	tb := NewTable()
	_ = tb.Add("salinity")
	// "Salinity" normalizes to the preferred key but displays differently,
	// so it must be translated to the canonical display form.
	op := tb.ToMassEdit("field", []string{"Salinity"})
	if op == nil || len(op.Edits) != 1 || op.Edits[0].To != "salinity" {
		t.Fatalf("op = %+v", op)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable()
	_ = tb.Add("air_temperature", "airtemp", "ATastn")
	_ = tb.Add("salinity") // no alternates
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tb.Len() {
		t.Errorf("round trip Len = %d, want %d", back.Len(), tb.Len())
	}
	if got, st := back.Resolve("ATastn"); got != "air_temperature" || st != Alternate {
		t.Errorf("round trip Resolve = %q, %v", got, st)
	}
	if !back.Covers("salinity") {
		t.Error("alternate-less preferred name lost in round trip")
	}
	// Export is stable.
	var buf2 bytes.Buffer
	if err := back.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() == "" {
		t.Error("second export empty")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header\n",
		"preferred,alternate\n\"unclosed\n",
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", c)
		}
	}
	// Conflicting rows surface with a line number.
	bad := "preferred,alternate\na,x\nb,x\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("conflict error = %v", err)
	}
}

func TestStatusString(t *testing.T) {
	if Unknown.String() != "unknown" || Preferred.String() != "preferred" || Alternate.String() != "alternate" {
		t.Error("Status strings wrong")
	}
}

func BenchmarkResolve(b *testing.B) {
	tb := NewTable()
	_ = tb.Add("air_temperature", "airtemp", "ATastn", "atemp", "t_air")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Resolve("ATastn")
	}
}
