package scan

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"metamess/internal/catalog"
)

// fuzzTarMax bounds one streamed entry during fuzzing — small enough
// that a hostile header claiming terabytes cannot make the connector
// allocate past it.
const fuzzTarMax = 1 << 16

// canonicalDump renders a catalog as deterministic bytes: features
// sorted by path, scan timestamps (wall-clock bookkeeping) zeroed.
func canonicalDump(t *testing.T, c *catalog.Catalog) []byte {
	t.Helper()
	var feats []*catalog.Feature
	c.ForEach(func(f *catalog.Feature) {
		cl := f.Clone()
		cl.ScannedAt = time.Time{}
		feats = append(feats, cl)
	})
	sort.Slice(feats, func(i, j int) bool { return feats[i].Path < feats[j].Path })
	out, err := json.Marshal(feats)
	if err != nil {
		t.Fatalf("catalog does not marshal: %v", err)
	}
	return out
}

// FuzzTarConnector streams hostile tar (and tar.gz) images through the
// archive connector. The stream is a trust boundary — POST-fed archives
// arrive from arbitrary producers — so the properties are:
//
//   - no input panics the connector;
//   - ScanInto returns a result XOR an error, never both or neither;
//   - ingest is deterministic: the same bytes yield byte-identical
//     catalogs and deltas on every run;
//   - memory stays bounded: no accepted feature's source exceeded
//     MaxFileBytes, no matter what the entry header claimed;
//   - a failed ingest leaves the target catalog empty — a hostile
//     stream cannot half-apply.
func FuzzTarConnector(f *testing.F) {
	seed := func(entries map[string]string) []byte {
		var buf bytes.Buffer
		tw := tar.NewWriter(&buf)
		for name, body := range entries {
			tw.WriteHeader(&tar.Header{Name: name, Size: int64(len(body)), Mode: 0o644, Format: tar.FormatPAX})
			tw.Write([]byte(body))
		}
		tw.Close()
		return buf.Bytes()
	}
	valid := seed(map[string]string{
		"push/a.csv": "time,latitude,longitude,temp [C]\n2010-06-01T00:00:00Z,45.5,-124.4,11.2\n",
		"push/b.obs": "#station: s1\n#lat: 46.2\n#lon: -123.8\n#fields:\ttemp\n#units:\tC\n1275350400\t11.2\n",
	})
	f.Add(valid)
	var gzBuf bytes.Buffer
	gz := gzip.NewWriter(&gzBuf)
	gz.Write(valid)
	gz.Close()
	f.Add(gzBuf.Bytes())
	f.Add(seed(map[string]string{"../escape.csv": "a,b\n1,2\n"}))
	f.Add(valid[:len(valid)/2]) // truncated stream
	f.Add([]byte("\x1f\x8b not actually gzip"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		run := func() (*catalog.Catalog, *Result, error) {
			conn := TarBytesConnector(data)
			conn.MaxFileBytes = fuzzTarMax
			c := catalog.New()
			res, err := conn.ScanInto(c)
			return c, res, err
		}
		c1, res1, err1 := run()
		if (res1 == nil) == (err1 == nil) {
			t.Fatalf("result XOR error violated: res=%v err=%v", res1, err1)
		}
		c2, res2, err2 := run()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic outcome: first err=%v, second err=%v", err1, err2)
		}
		if err1 != nil {
			if c1.Len() != 0 {
				t.Fatalf("failed ingest half-applied %d features", c1.Len())
			}
			return
		}
		d1, d2 := canonicalDump(t, c1), canonicalDump(t, c2)
		if !bytes.Equal(d1, d2) {
			t.Fatalf("nondeterministic catalog:\n first %s\nsecond %s", d1, d2)
		}
		if len(res1.Added) != len(res2.Added) || len(res1.Changed) != len(res2.Changed) || len(res1.Removed) != len(res2.Removed) {
			t.Fatalf("nondeterministic delta: %v/%v/%v vs %v/%v/%v",
				res1.Added, res1.Changed, res1.Removed, res2.Added, res2.Changed, res2.Removed)
		}
		c1.ForEach(func(feat *catalog.Feature) {
			if feat.Bytes > fuzzTarMax {
				t.Fatalf("feature %s ingested %d bytes past the %d cap", feat.Path, feat.Bytes, fuzzTarMax)
			}
			if err := feat.Validate(); err != nil {
				t.Fatalf("ingested feature invalid: %v", err)
			}
		})
	})
}
