package scan

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
)

// genArchive generates a small archive and returns root + manifest.
func genArchive(t testing.TB, n int, seed int64) (string, *archive.Manifest) {
	t.Helper()
	root := t.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return root, m
}

func TestScanAllMatchesManifest(t *testing.T) {
	root, m := genArchive(t, 12, 21)
	res, err := New(Config{Root: root}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("scan errors: %v", res.Errors)
	}
	if len(res.Features) != len(m.Datasets) {
		t.Fatalf("features = %d, want %d", len(res.Features), len(m.Datasets))
	}
	truth := m.ByPath()
	for _, f := range res.Features {
		d, ok := truth[filepath.ToSlash(f.Path)]
		if !ok {
			t.Fatalf("scanned unknown path %s", f.Path)
		}
		if f.RowCount != d.Rows {
			t.Errorf("%s: rows %d, want %d", f.Path, f.RowCount, d.Rows)
		}
		if len(f.Variables) != len(d.Vars) {
			t.Errorf("%s: vars %d, want %d", f.Path, len(f.Variables), len(d.Vars))
			continue
		}
		for i, v := range f.Variables {
			if v.RawName != d.Vars[i].Raw {
				t.Errorf("%s var %d: raw %q, want %q", f.Path, i, v.RawName, d.Vars[i].Raw)
			}
			if v.Unit != d.Vars[i].Unit {
				t.Errorf("%s var %d: unit %q, want %q", f.Path, i, v.Unit, d.Vars[i].Unit)
			}
			if v.Count == 0 {
				t.Errorf("%s var %q: zero observations", f.Path, v.RawName)
			}
		}
		// Extents must match the manifest to within coordinate precision:
		// CSV/OBS files round coordinates to 5 decimals (~1m).
		const tol = 1e-4
		if math.Abs(f.BBox.MinLat-d.BBox.MinLat) > tol ||
			math.Abs(f.BBox.MaxLon-d.BBox.MaxLon) > tol {
			t.Errorf("%s: bbox %v, want ~%v", f.Path, f.BBox, d.BBox)
		}
		if f.Time.Start.Unix() != d.Time.Start.Unix() {
			// OBS stores unix seconds; compare at second precision.
			t.Errorf("%s: start %v, want %v", f.Path, f.Time.Start, d.Time.Start)
		}
		if f.Source != d.Source {
			t.Errorf("%s: source %q, want %q", f.Path, f.Source, d.Source)
		}
		if f.Format != string(d.Format) {
			t.Errorf("%s: format %q, want %q", f.Path, f.Format, d.Format)
		}
	}
	if res.Stats.Parsed != len(m.Datasets) || res.Stats.BytesParsed == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestScanDirsRestrict(t *testing.T) {
	root, m := genArchive(t, 12, 3)
	res, err := New(Config{Root: root, Dirs: []string{"stations"}}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	wantCount := 0
	for _, d := range m.Datasets {
		if d.Source == "stations" {
			wantCount++
		}
	}
	if len(res.Features) != wantCount {
		t.Errorf("features = %d, want %d (stations only)", len(res.Features), wantCount)
	}
	for _, f := range res.Features {
		if f.Source != "stations" {
			t.Errorf("scanned %s outside configured dir", f.Path)
		}
	}
	// Adding a directory (curatorial improvement) widens the scan.
	res2, err := New(Config{Root: root, Dirs: []string{"stations", "cruises"}}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Features) <= len(res.Features) {
		t.Error("adding a directory did not find more datasets")
	}
}

func TestScanIntoIncremental(t *testing.T) {
	root, m := genArchive(t, 9, 17)
	c := catalog.New()
	sc := New(Config{Root: root})
	res1, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Parsed != len(m.Datasets) || c.Len() != len(m.Datasets) {
		t.Fatalf("initial scan: %+v", res1.Stats)
	}
	// Re-scan with nothing changed: everything is skipped.
	res2, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Parsed != 0 || res2.Stats.SkippedUnchanged != len(m.Datasets) {
		t.Fatalf("incremental rescan: %+v", res2.Stats)
	}
	// Touch one file with new content: exactly one re-parse.
	target := filepath.Join(root, m.Datasets[0].Path)
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(target, future, future); err != nil {
		t.Fatal(err)
	}
	res3, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.Parsed != 1 || res3.Stats.SkippedUnchanged != len(m.Datasets)-1 {
		t.Fatalf("after touch: %+v", res3.Stats)
	}
}

func TestScanSurvivesCorruptFile(t *testing.T) {
	root, m := genArchive(t, 6, 5)
	bad := filepath.Join(root, "stations", "corrupt.obs")
	if err := os.WriteFile(bad, []byte("#fields:\tx\nnot_a_number\t1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := New(Config{Root: root}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 1 || res.Stats.Failed != 1 {
		t.Fatalf("errors = %v, stats = %+v", res.Errors, res.Stats)
	}
	if len(res.Features) != len(m.Datasets) {
		t.Errorf("good files should still scan: %d", len(res.Features))
	}
}

func TestScanSkipsOversizedAndUnknown(t *testing.T) {
	root, m := genArchive(t, 3, 5)
	// An unknown extension is ignored entirely.
	if err := os.WriteFile(filepath.Join(root, "stations", "readme.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := New(Config{Root: root, MaxFileBytes: 1}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SkippedOther != len(m.Datasets) {
		t.Errorf("oversized skip count = %d, want %d", res.Stats.SkippedOther, len(m.Datasets))
	}
	if len(res.Features) != 0 {
		t.Error("oversized files were parsed")
	}
}

func TestScanMissingRoot(t *testing.T) {
	if _, err := New(Config{}).ScanAll(); err == nil {
		t.Error("empty root accepted")
	}
	if _, err := New(Config{Root: filepath.Join(t.TempDir(), "ghost")}).ScanAll(); err == nil {
		t.Error("missing root accepted")
	}
}

func TestSniff(t *testing.T) {
	cases := []struct {
		path string
		head string
		want archive.Format
		ok   bool
	}{
		{"a.csv", "time,latitude,longitude,x\n1,2,3,4\n", archive.FormatCSV, true},
		{"a.obs", "# comment\n#fields:\tx\n", archive.FormatOBS, true},
		{"a.jsonl", `{"type":"header"}` + "\n", archive.FormatJSONL, true},
		// Content wins over extension.
		{"mislabeled.csv", `{"type":"header"}` + "\n", archive.FormatJSONL, true},
		{"mislabeled.jsonl", "#station: x\n", archive.FormatOBS, true},
		// Extension fallback when content is inconclusive.
		{"plain.obs", "", archive.FormatOBS, true},
		{"noidea.bin", "binarygarbage", "", false},
	}
	for _, c := range cases {
		got, ok := Sniff(c.path, []byte(c.head))
		if ok != c.ok || got != c.want {
			t.Errorf("Sniff(%q, %q) = %q, %v; want %q, %v", c.path, c.head, got, ok, c.want, c.ok)
		}
	}
}

func TestSplitNameUnit(t *testing.T) {
	cases := []struct{ in, name, unit string }{
		{"water_temperature [degC]", "water_temperature", "degC"},
		{"salinity [practical salinity units]", "salinity", "practical salinity units"},
		{"no_unit", "no_unit", ""},
		{"weird [bracket", "weird [bracket", ""},
		{"[degC]", "[degC]", ""},
		{"name [a[b]]", "name [a", "b]"},
	}
	for _, c := range cases {
		name, unit := splitNameUnit(c.in)
		if name != c.name || unit != c.unit {
			t.Errorf("splitNameUnit(%q) = %q, %q; want %q, %q", c.in, name, unit, c.name, c.unit)
		}
	}
}

func TestValueRangesWithinTypical(t *testing.T) {
	root, m := genArchive(t, 9, 23)
	res, err := New(Config{Root: root}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	truth := m.ByPath()
	for _, f := range res.Features {
		d := truth[filepath.ToSlash(f.Path)]
		for i, v := range f.Variables {
			if v.Count == 0 {
				continue
			}
			if v.Range.Min > v.Range.Max {
				t.Errorf("%s %q: inverted range %v", f.Path, v.RawName, v.Range)
			}
			_ = d
			_ = i
		}
	}
}

func TestSourceOf(t *testing.T) {
	if got := sourceOf("stations/2010/a.csv"); got != "stations" {
		t.Errorf("sourceOf = %q", got)
	}
	if got := sourceOf("orphan.csv"); got != "unknown" {
		t.Errorf("sourceOf root file = %q", got)
	}
}

func TestParseErrorsAreDescriptive(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "stations")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"short.csv":      "time,latitude\n", // header too short
		"badtime.csv":    "time,latitude,longitude,x\nnot-a-time,1,2,3\n",
		"badcoord.csv":   "time,latitude,longitude,x\n2010-06-01T00:00:00Z,abc,2,3\n",
		"nofields.obs":   "#lat: 1\n#lon: 2\n5 6\n",
		"noheader.jsonl": `{"type":"obs","values":[1]}` + "\n",
	}
	for name, content := range cases {
		path := filepath.Join(sub, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, err := New(Config{Root: root}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != len(cases) {
		t.Fatalf("errors = %d, want %d: %v", len(res.Errors), len(cases), res.Errors)
	}
	for _, e := range res.Errors {
		if !strings.Contains(e.Error(), "scan:") {
			t.Errorf("error lacks package prefix: %v", e)
		}
	}
}

func BenchmarkScanArchive30(b *testing.B) {
	root, _ := genArchive(b, 30, 99)
	cfg := Config{Root: root}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := New(cfg).ScanAll()
		if err != nil || len(res.Errors) > 0 {
			b.Fatalf("%v %v", err, res.Errors)
		}
	}
}
