package scan

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
)

// genArchive generates a small archive and returns root + manifest.
func genArchive(t testing.TB, n int, seed int64) (string, *archive.Manifest) {
	t.Helper()
	root := t.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return root, m
}

func TestScanAllMatchesManifest(t *testing.T) {
	root, m := genArchive(t, 12, 21)
	res, err := New(Config{Root: root}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("scan errors: %v", res.Errors)
	}
	if len(res.Features) != len(m.Datasets) {
		t.Fatalf("features = %d, want %d", len(res.Features), len(m.Datasets))
	}
	truth := m.ByPath()
	for _, f := range res.Features {
		d, ok := truth[filepath.ToSlash(f.Path)]
		if !ok {
			t.Fatalf("scanned unknown path %s", f.Path)
		}
		if f.RowCount != d.Rows {
			t.Errorf("%s: rows %d, want %d", f.Path, f.RowCount, d.Rows)
		}
		if len(f.Variables) != len(d.Vars) {
			t.Errorf("%s: vars %d, want %d", f.Path, len(f.Variables), len(d.Vars))
			continue
		}
		for i, v := range f.Variables {
			if v.RawName != d.Vars[i].Raw {
				t.Errorf("%s var %d: raw %q, want %q", f.Path, i, v.RawName, d.Vars[i].Raw)
			}
			if v.Unit != d.Vars[i].Unit {
				t.Errorf("%s var %d: unit %q, want %q", f.Path, i, v.Unit, d.Vars[i].Unit)
			}
			if v.Count == 0 {
				t.Errorf("%s var %q: zero observations", f.Path, v.RawName)
			}
		}
		// Extents must match the manifest to within coordinate precision:
		// CSV/OBS files round coordinates to 5 decimals (~1m).
		const tol = 1e-4
		if math.Abs(f.BBox.MinLat-d.BBox.MinLat) > tol ||
			math.Abs(f.BBox.MaxLon-d.BBox.MaxLon) > tol {
			t.Errorf("%s: bbox %v, want ~%v", f.Path, f.BBox, d.BBox)
		}
		if f.Time.Start.Unix() != d.Time.Start.Unix() {
			// OBS stores unix seconds; compare at second precision.
			t.Errorf("%s: start %v, want %v", f.Path, f.Time.Start, d.Time.Start)
		}
		if f.Source != d.Source {
			t.Errorf("%s: source %q, want %q", f.Path, f.Source, d.Source)
		}
		if f.Format != string(d.Format) {
			t.Errorf("%s: format %q, want %q", f.Path, f.Format, d.Format)
		}
	}
	if res.Stats.Parsed != len(m.Datasets) || res.Stats.BytesParsed == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestScanDirsRestrict(t *testing.T) {
	root, m := genArchive(t, 12, 3)
	res, err := New(Config{Root: root, Dirs: []string{"stations"}}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	wantCount := 0
	for _, d := range m.Datasets {
		if d.Source == "stations" {
			wantCount++
		}
	}
	if len(res.Features) != wantCount {
		t.Errorf("features = %d, want %d (stations only)", len(res.Features), wantCount)
	}
	for _, f := range res.Features {
		if f.Source != "stations" {
			t.Errorf("scanned %s outside configured dir", f.Path)
		}
	}
	// Adding a directory (curatorial improvement) widens the scan.
	res2, err := New(Config{Root: root, Dirs: []string{"stations", "cruises"}}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Features) <= len(res.Features) {
		t.Error("adding a directory did not find more datasets")
	}
}

func TestScanIntoIncremental(t *testing.T) {
	root, m := genArchive(t, 9, 17)
	c := catalog.New()
	sc := New(Config{Root: root})
	res1, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Parsed != len(m.Datasets) || c.Len() != len(m.Datasets) {
		t.Fatalf("initial scan: %+v", res1.Stats)
	}
	// Re-scan with nothing changed: everything is skipped.
	res2, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Parsed != 0 || res2.Stats.SkippedUnchanged != len(m.Datasets) {
		t.Fatalf("incremental rescan: %+v", res2.Stats)
	}
	// Touch one file with new content: exactly one re-parse.
	target := filepath.Join(root, m.Datasets[0].Path)
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(target, future, future); err != nil {
		t.Fatal(err)
	}
	res3, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.Parsed != 1 || res3.Stats.SkippedUnchanged != len(m.Datasets)-1 {
		t.Fatalf("after touch: %+v", res3.Stats)
	}
}

func TestScanSurvivesCorruptFile(t *testing.T) {
	root, m := genArchive(t, 6, 5)
	bad := filepath.Join(root, "stations", "corrupt.obs")
	if err := os.WriteFile(bad, []byte("#fields:\tx\nnot_a_number\t1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := New(Config{Root: root}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 1 || res.Stats.Failed != 1 {
		t.Fatalf("errors = %v, stats = %+v", res.Errors, res.Stats)
	}
	if len(res.Features) != len(m.Datasets) {
		t.Errorf("good files should still scan: %d", len(res.Features))
	}
}

func TestScanSkipsOversizedAndUnknown(t *testing.T) {
	root, m := genArchive(t, 3, 5)
	// An unknown extension is ignored entirely.
	if err := os.WriteFile(filepath.Join(root, "stations", "readme.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := New(Config{Root: root, MaxFileBytes: 1}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SkippedOther != len(m.Datasets) {
		t.Errorf("oversized skip count = %d, want %d", res.Stats.SkippedOther, len(m.Datasets))
	}
	if len(res.Features) != 0 {
		t.Error("oversized files were parsed")
	}
}

func TestScanMissingRoot(t *testing.T) {
	if _, err := New(Config{}).ScanAll(); err == nil {
		t.Error("empty root accepted")
	}
	if _, err := New(Config{Root: filepath.Join(t.TempDir(), "ghost")}).ScanAll(); err == nil {
		t.Error("missing root accepted")
	}
}

func TestSniff(t *testing.T) {
	cases := []struct {
		path string
		head string
		want archive.Format
		ok   bool
	}{
		{"a.csv", "time,latitude,longitude,x\n1,2,3,4\n", archive.FormatCSV, true},
		{"a.obs", "# comment\n#fields:\tx\n", archive.FormatOBS, true},
		{"a.jsonl", `{"type":"header"}` + "\n", archive.FormatJSONL, true},
		// Content wins over extension.
		{"mislabeled.csv", `{"type":"header"}` + "\n", archive.FormatJSONL, true},
		{"mislabeled.jsonl", "#station: x\n", archive.FormatOBS, true},
		// Extension fallback when content is inconclusive.
		{"plain.obs", "", archive.FormatOBS, true},
		{"noidea.bin", "binarygarbage", "", false},
	}
	for _, c := range cases {
		got, ok := Sniff(c.path, []byte(c.head))
		if ok != c.ok || got != c.want {
			t.Errorf("Sniff(%q, %q) = %q, %v; want %q, %v", c.path, c.head, got, ok, c.want, c.ok)
		}
	}
}

func TestSplitNameUnit(t *testing.T) {
	cases := []struct{ in, name, unit string }{
		{"water_temperature [degC]", "water_temperature", "degC"},
		{"salinity [practical salinity units]", "salinity", "practical salinity units"},
		{"no_unit", "no_unit", ""},
		{"weird [bracket", "weird [bracket", ""},
		{"[degC]", "[degC]", ""},
		{"name [a[b]]", "name [a", "b]"},
	}
	for _, c := range cases {
		name, unit := splitNameUnit(c.in)
		if name != c.name || unit != c.unit {
			t.Errorf("splitNameUnit(%q) = %q, %q; want %q, %q", c.in, name, unit, c.name, c.unit)
		}
	}
}

func TestValueRangesWithinTypical(t *testing.T) {
	root, m := genArchive(t, 9, 23)
	res, err := New(Config{Root: root}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	truth := m.ByPath()
	for _, f := range res.Features {
		d := truth[filepath.ToSlash(f.Path)]
		for i, v := range f.Variables {
			if v.Count == 0 {
				continue
			}
			if v.Range.Min > v.Range.Max {
				t.Errorf("%s %q: inverted range %v", f.Path, v.RawName, v.Range)
			}
			_ = d
			_ = i
		}
	}
}

func TestSourceOf(t *testing.T) {
	if got := sourceOf("stations/2010/a.csv"); got != "stations" {
		t.Errorf("sourceOf = %q", got)
	}
	if got := sourceOf("orphan.csv"); got != "unknown" {
		t.Errorf("sourceOf root file = %q", got)
	}
}

func TestParseErrorsAreDescriptive(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "stations")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"short.csv":      "time,latitude\n", // header too short
		"badtime.csv":    "time,latitude,longitude,x\nnot-a-time,1,2,3\n",
		"badcoord.csv":   "time,latitude,longitude,x\n2010-06-01T00:00:00Z,abc,2,3\n",
		"nofields.obs":   "#lat: 1\n#lon: 2\n5 6\n",
		"noheader.jsonl": `{"type":"obs","values":[1]}` + "\n",
	}
	for name, content := range cases {
		path := filepath.Join(sub, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, err := New(Config{Root: root}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != len(cases) {
		t.Fatalf("errors = %d, want %d: %v", len(res.Errors), len(cases), res.Errors)
	}
	for _, e := range res.Errors {
		if !strings.Contains(e.Error(), "scan:") {
			t.Errorf("error lacks package prefix: %v", e)
		}
	}
}

func BenchmarkScanArchive30(b *testing.B) {
	root, _ := genArchive(b, 30, 99)
	cfg := Config{Root: root}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := New(cfg).ScanAll()
		if err != nil || len(res.Errors) > 0 {
			b.Fatalf("%v %v", err, res.Errors)
		}
	}
}

func TestScanDeltaClassification(t *testing.T) {
	root, m := genArchive(t, 10, 31)
	c := catalog.New()
	sc := New(Config{Root: root})
	res1, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Added) != len(m.Datasets) || len(res1.Changed) != 0 || len(res1.Removed) != 0 {
		t.Fatalf("initial delta: added=%d changed=%d removed=%d",
			len(res1.Added), len(res1.Changed), len(res1.Removed))
	}

	// One modify, one delete, one add.
	modTarget := filepath.Join(root, m.Datasets[0].Path)
	data, err := os.ReadFile(modTarget)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(modTarget, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	delTarget := filepath.Join(root, m.Datasets[1].Path)
	if err := os.Remove(delTarget); err != nil {
		t.Fatal(err)
	}
	added := filepath.Join(root, "stations", "fresh.obs")
	if err := os.WriteFile(added, []byte("#station: s9\n#lat: 45.1\n#lon: -124.2\n#fields:\ttime\twater_temperature [degC]\n1273000000\t11.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	res2, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Added) != 1 || res2.Added[0] != catalog.IDForPath(filepath.Join("stations", "fresh.obs")) {
		t.Errorf("added = %v", res2.Added)
	}
	if len(res2.Changed) != 1 || res2.Changed[0] != catalog.IDForPath(m.Datasets[0].Path) {
		t.Errorf("changed = %v", res2.Changed)
	}
	if len(res2.Removed) != 1 || res2.Removed[0] != catalog.IDForPath(m.Datasets[1].Path) {
		t.Errorf("removed = %v", res2.Removed)
	}
	if res2.Stats.Removed != 1 {
		t.Errorf("stats.Removed = %d", res2.Stats.Removed)
	}
	// The catalog reflects the delta: deleted gone, added present.
	if _, ok := c.Get(catalog.IDForPath(m.Datasets[1].Path)); ok {
		t.Error("deleted dataset still cataloged")
	}
	if _, ok := c.Get(catalog.IDForPath(filepath.Join("stations", "fresh.obs"))); !ok {
		t.Error("added dataset not cataloged")
	}
}

func TestScanRemovalRespectsDirScope(t *testing.T) {
	root, m := genArchive(t, 12, 7)
	c := catalog.New()
	if _, err := New(Config{Root: root}).ScanInto(c); err != nil {
		t.Fatal(err)
	}
	// Re-scan only "stations": features from other dirs are out of
	// scope and must not be reported (or deleted) as removed.
	res, err := New(Config{Root: root, Dirs: []string{"stations"}}).ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Fatalf("scoped scan removed %v", res.Removed)
	}
	if c.Len() != len(m.Datasets) {
		t.Fatalf("catalog shrank to %d, want %d", c.Len(), len(m.Datasets))
	}
}

func TestScanCatchesMtimePreservingEdit(t *testing.T) {
	root, _ := genArchive(t, 6, 11)
	// A handcrafted dataset whose edit we fully control: both versions
	// are valid OBS with identical byte length, differing only in an
	// observed value.
	rel := filepath.Join("stations", "pinned.obs")
	target := filepath.Join(root, rel)
	body := func(v int) string {
		return "#station: pin\n#lat: 45.1000\n#lon: -124.2000\n" +
			"#fields:\ttime\twater_temperature [degC]\n" +
			"1273000000\t1" + string(rune('0'+v)) + ".5\n"
	}
	if err := os.WriteFile(target, []byte(body(1)), 0o644); err != nil {
		t.Fatal(err)
	}
	c := catalog.New()
	sc := New(Config{Root: root})
	if res, err := sc.ScanInto(c); err != nil || res.Stats.Failed != 0 {
		t.Fatalf("initial scan: err=%v stats=%+v errors=%v", err, res.Stats, res.Errors)
	}

	// Edit the value, then restore the exact size and mtime: the stat
	// fingerprint is a lie only the content hash can expose.
	st, err := os.Stat(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, []byte(body(2)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(target, st.ModTime(), st.ModTime()); err != nil {
		t.Fatal(err)
	}

	res, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 1 || res.Changed[0] != catalog.IDForPath(rel) {
		t.Fatalf("mtime-preserving edit not caught: changed=%v stats=%+v errors=%v", res.Changed, res.Stats, res.Errors)
	}
	f, ok := c.Get(catalog.IDForPath(rel))
	if !ok || f.Variables[0].Range.Max < 12 {
		t.Fatalf("edited value not reflected in catalog: %+v", f)
	}
}

func TestScanHashVerifyStampsThenTrustsStat(t *testing.T) {
	root, m := genArchive(t, 5, 19)
	c := catalog.New()
	sc := New(Config{Root: root})
	if _, err := sc.ScanInto(c); err != nil {
		t.Fatal(err)
	}
	// Files were written moments before the scan, inside the racy
	// window: the first re-scan must verify them by content hash.
	res2, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.HashVerified != len(m.Datasets) || res2.Stats.SkippedUnchanged != len(m.Datasets) {
		t.Fatalf("first rescan: %+v", res2.Stats)
	}
	// The verify refreshed the scan stamps; with mtimes now safely in
	// the past, the next re-scan trusts the stat fingerprint alone.
	sc.now = func() time.Time { return time.Now().Add(time.Minute) }
	res3, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.HashVerified != len(m.Datasets) {
		// Stamps were refreshed at "now"; mtime + racyWindow precedes
		// them only after the clock moves past the window.
		t.Logf("second rescan still verifying: %+v", res3.Stats)
	}
	res4, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Stats.HashVerified != 0 || res4.Stats.SkippedUnchanged != len(m.Datasets) {
		t.Fatalf("stat fingerprint still distrusted: %+v", res4.Stats)
	}
}

func TestScanStatFailureCountsAsFailed(t *testing.T) {
	root, m := genArchive(t, 4, 3)
	// A dangling symlink with a candidate extension stats to an error
	// mid-walk; the scan must record it and carry on.
	if err := os.Symlink(filepath.Join(root, "nowhere.csv"),
		filepath.Join(root, "stations", "dangling.csv")); err != nil {
		t.Fatal(err)
	}
	res, err := New(Config{Root: root}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 1 || len(res.Errors) != 1 {
		t.Fatalf("failed = %d, errors = %v", res.Stats.Failed, res.Errors)
	}
	if !strings.Contains(res.Errors[0].Error(), "stat") {
		t.Errorf("error should name the stat failure: %v", res.Errors[0])
	}
	if len(res.Features) != len(m.Datasets) {
		t.Errorf("good files should still scan: %d, want %d", len(res.Features), len(m.Datasets))
	}
}

func TestScanOversizedSkipCounters(t *testing.T) {
	root, m := genArchive(t, 4, 9)
	big := filepath.Join(root, "stations", "big.csv")
	if err := os.WriteFile(big, []byte("time,latitude,longitude,x\n"+strings.Repeat("1,2,3,4\n", 1<<17)), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := New(Config{Root: root, MaxFileBytes: 1 << 19}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SkippedOther != 1 {
		t.Errorf("SkippedOther = %d, want 1 (only the oversized file)", res.Stats.SkippedOther)
	}
	if res.Stats.Parsed != len(m.Datasets) || res.Stats.Failed != 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.FilesSeen != len(m.Datasets)+1 {
		t.Errorf("FilesSeen = %d, want %d", res.Stats.FilesSeen, len(m.Datasets)+1)
	}
}

func TestScanParallelMatchesSerial(t *testing.T) {
	root, _ := genArchive(t, 24, 77)
	serial, err := New(Config{Root: root, Workers: 1}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Config{Root: root, Workers: 8}).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Features) != len(parallel.Features) {
		t.Fatalf("feature counts differ: %d vs %d", len(serial.Features), len(parallel.Features))
	}
	for i := range serial.Features {
		a, b := serial.Features[i], parallel.Features[i]
		if a.ID != b.ID || a.ContentHash != b.ContentHash || len(a.Variables) != len(b.Variables) {
			t.Errorf("feature %d differs: %s vs %s", i, a.Path, b.Path)
		}
	}
	if serial.Stats.Parsed != parallel.Stats.Parsed || serial.Stats.FilesSeen != parallel.Stats.FilesSeen {
		t.Errorf("stats differ: %+v vs %+v", serial.Stats, parallel.Stats)
	}
}

func TestWalkErrorDoesNotRetractSubtree(t *testing.T) {
	root, m := genArchive(t, 10, 29)
	c := catalog.New()
	sc := New(Config{Root: root, Dirs: []string{"stations", "cruises", "auv"}})
	if _, err := sc.ScanInto(c); err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("nothing cataloged")
	}
	stations := 0
	for _, d := range m.Datasets {
		if d.Source == "stations" {
			stations++
		}
	}
	if stations == 0 {
		t.Skip("no stations datasets at this seed")
	}

	// Make the "stations" scan dir transiently unavailable (an unmount /
	// NFS blip): the walk errors, its files go unobserved, and deletion
	// detection must NOT retract the datasets cataloged beneath it.
	hidden := filepath.Join(t.TempDir(), "stations")
	if err := os.Rename(filepath.Join(root, "stations"), hidden); err != nil {
		t.Fatal(err)
	}
	res, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed == 0 || len(res.Errors) == 0 {
		t.Fatalf("walk error not recorded: %+v", res.Stats)
	}
	if len(res.Removed) != 0 {
		t.Fatalf("walk error retracted %d datasets: %v", len(res.Removed), res.Removed)
	}
	if c.Len() != len(m.Datasets) {
		t.Fatalf("catalog shrank to %d, want %d", c.Len(), len(m.Datasets))
	}

	// The blip clears; a real deletion inside the restored directory is
	// detected again.
	if err := os.Rename(hidden, filepath.Join(root, "stations")); err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, d := range m.Datasets {
		if d.Source == "stations" {
			victim = d.Path
			break
		}
	}
	if err := os.Remove(filepath.Join(root, victim)); err != nil {
		t.Fatal(err)
	}
	res, err = sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0] != catalog.IDForPath(victim) {
		t.Fatalf("post-recovery removal not detected: %v (stats %+v)", res.Removed, res.Stats)
	}
}

// TestRootWalkErrorSuppressesAllRemovals covers total transient loss:
// every configured scan directory fails at the root of its walk (an
// unmounted archive), so nothing at all is observed — and nothing may
// be retracted.
func TestRootWalkErrorSuppressesAllRemovals(t *testing.T) {
	root, m := genArchive(t, 6, 37)
	c := catalog.New()
	sc2 := New(Config{Root: root, Dirs: []string{"stations", "cruises", "auv"}})
	if _, err := sc2.ScanInto(c); err != nil {
		t.Fatal(err)
	}
	// Swap every scan dir away: all three walks error at their roots,
	// nothing is seen, and not a single dataset may be retracted.
	hidden := t.TempDir()
	for _, d := range []string{"stations", "cruises", "auv"} {
		if err := os.Rename(filepath.Join(root, d), filepath.Join(hidden, d)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sc2.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Fatalf("transient dir loss retracted %d datasets: %v", len(res.Removed), res.Removed)
	}
	if c.Len() != len(m.Datasets) {
		t.Fatalf("catalog shrank to %d, want %d", c.Len(), len(m.Datasets))
	}
	if res.Stats.Failed == 0 {
		t.Fatal("walk errors not recorded")
	}
}

func TestRejectedUpsertLeavesDelta(t *testing.T) {
	root, m := genArchive(t, 4, 13)
	// Parses fine but fails Feature.Validate (duplicate raw name), so
	// Upsert rejects it: the scan must surface the error without
	// keeping the delta permanently non-empty.
	bad := filepath.Join(root, "stations", "dupes.csv")
	if err := os.WriteFile(bad,
		[]byte("time,latitude,longitude,temp [degC],temp [degC]\n2010-05-01T00:00:00Z,45.1,-124.2,10.0,11.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := catalog.New()
	sc := New(Config{Root: root})
	res, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed == 0 {
		t.Skip("fixture unexpectedly validated; scan rejected nothing")
	}
	badID := catalog.IDForPath(filepath.Join("stations", "dupes.csv"))
	for _, id := range res.Added {
		if id == badID {
			t.Error("rejected feature still classified as added")
		}
	}
	if c.Len() != len(m.Datasets) {
		t.Errorf("catalog = %d datasets, want %d", c.Len(), len(m.Datasets))
	}
	// The rest of the archive being unchanged, the next scan's delta is
	// empty even though the bad file re-parses and re-fails.
	res2, err := sc.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Added)+len(res2.Changed)+len(res2.Removed) != 0 {
		t.Errorf("rejected file keeps the delta non-empty: added=%v changed=%v removed=%v",
			res2.Added, res2.Changed, res2.Removed)
	}
	if res2.Stats.Failed == 0 {
		t.Error("persistent failure not re-surfaced")
	}
}
