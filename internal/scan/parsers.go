package scan

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
)

// accumulator builds a feature's summary in one pass over observations.
type accumulator struct {
	bbox   geo.BBox
	trange geo.TimeRange
	rows   int
	vars   []varAcc
}

type varAcc struct {
	name, unit string
	min, max   float64
	count      int
}

func newAccumulator(names, units []string) *accumulator {
	a := &accumulator{bbox: geo.EmptyBBox()}
	for i, n := range names {
		u := ""
		if i < len(units) {
			u = units[i]
		}
		a.vars = append(a.vars, varAcc{name: n, unit: u})
	}
	return a
}

// finite reports whether v is a usable observation value. strconv
// accepts spellings like "inf" and "nan", but the scorer's value ranges
// and JSON persistence cannot carry non-finite numbers, so parsers
// treat them as missing cells and reject them as coordinates.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// obsTimeBounds keep parsed timestamps within JSON-representable years
// [1, 9999]; a unix-seconds field outside them is file corruption, not
// a dataset from the far future.
const (
	minUnixSec = -62135596800 // 0001-01-01T00:00:00Z
	maxUnixSec = 253402300799 // 9999-12-31T23:59:59Z
)

func (a *accumulator) observe(at time.Time, p geo.Point, values []float64, present []bool) {
	a.rows++
	a.bbox = a.bbox.ExtendPoint(p)
	a.trange = a.trange.Extend(at)
	for i := range a.vars {
		if i >= len(values) || (present != nil && !present[i]) {
			continue
		}
		v := values[i]
		va := &a.vars[i]
		if va.count == 0 || v < va.min {
			va.min = v
		}
		if va.count == 0 || v > va.max {
			va.max = v
		}
		va.count++
	}
}

func (a *accumulator) feature() *catalog.Feature {
	f := &catalog.Feature{
		BBox:     a.bbox,
		Time:     a.trange,
		RowCount: a.rows,
	}
	for _, va := range a.vars {
		f.Variables = append(f.Variables, catalog.VarFeature{
			RawName: va.name,
			Name:    va.name,
			Unit:    va.unit,
			Range:   geo.ValueRange{Min: va.min, Max: va.max},
			Count:   va.count,
		})
	}
	return f
}

// parseCSV reads the cruise format: header
// time,latitude,longitude,<name [unit]>..., then data records.
func parseCSV(rel string, data []byte) (*catalog.Feature, error) {
	r := csv.NewReader(bytes.NewReader(data))
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("scan: %s: header: %w", rel, err)
	}
	if len(header) < 4 {
		return nil, fmt.Errorf("scan: %s: header too short (%d columns)", rel, len(header))
	}
	if !strings.EqualFold(header[0], "time") {
		return nil, fmt.Errorf("scan: %s: first column %q, want time", rel, header[0])
	}
	names := make([]string, 0, len(header)-3)
	units := make([]string, 0, len(header)-3)
	for _, cell := range header[3:] {
		name, unit := splitNameUnit(cell)
		names = append(names, name)
		units = append(units, unit)
	}
	acc := newAccumulator(names, units)
	for line := 2; ; line++ {
		rec, err := r.Read()
		if err != nil {
			if err.Error() == "EOF" || errIsEOF(err) {
				break
			}
			return nil, fmt.Errorf("scan: %s line %d: %w", rel, line, err)
		}
		at, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return nil, fmt.Errorf("scan: %s line %d: bad time %q", rel, line, rec[0])
		}
		lat, err1 := strconv.ParseFloat(rec[1], 64)
		lon, err2 := strconv.ParseFloat(rec[2], 64)
		if err1 != nil || err2 != nil || !finite(lat) || !finite(lon) {
			return nil, fmt.Errorf("scan: %s line %d: bad coordinates", rel, line)
		}
		values := make([]float64, len(names))
		present := make([]bool, len(names))
		for i := 0; i < len(names) && 3+i < len(rec); i++ {
			cell := strings.TrimSpace(rec[3+i])
			if cell == "" || cell == "NaN" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("scan: %s line %d: bad value %q", rel, line, cell)
			}
			if !finite(v) {
				continue // "inf"/"nan" spellings: missing, like the NaN text
			}
			values[i] = v
			present[i] = true
		}
		acc.observe(at, geo.Point{Lat: lat, Lon: lon}, values, present)
	}
	return acc.feature(), nil
}

// splitNameUnit parses "name [unit]" header cells.
func splitNameUnit(cell string) (string, string) {
	cell = strings.TrimSpace(cell)
	open := strings.LastIndexByte(cell, '[')
	if open < 0 || !strings.HasSuffix(cell, "]") {
		return cell, ""
	}
	name := strings.TrimSpace(cell[:open])
	unit := strings.TrimSpace(cell[open+1 : len(cell)-1])
	if name == "" {
		return cell, ""
	}
	return name, unit
}

func errIsEOF(err error) bool { return strings.Contains(err.Error(), "EOF") }

// parseOBS reads the station format: "#key: value" headers with
// tab-separated #fields and #units lines, then tab-separated rows of
// unix seconds and values. Location is fixed in the header.
func parseOBS(rel string, data []byte) (*catalog.Feature, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var (
		lat, lon float64
		haveLat  bool
		haveLon  bool
		names    []string
		units    []string
		acc      *accumulator
		lineNo   int
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			body := strings.TrimPrefix(line, "#")
			switch {
			case strings.HasPrefix(body, "station:"):
				// Station id retained in the path; nothing to record.
			case strings.HasPrefix(body, "lat:"):
				v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(body, "lat:")), 64)
				if err != nil || !finite(v) {
					return nil, fmt.Errorf("scan: %s line %d: bad lat", rel, lineNo)
				}
				lat, haveLat = v, true
			case strings.HasPrefix(body, "lon:"):
				v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(body, "lon:")), 64)
				if err != nil || !finite(v) {
					return nil, fmt.Errorf("scan: %s line %d: bad lon", rel, lineNo)
				}
				lon, haveLon = v, true
			case strings.HasPrefix(body, "fields:"):
				names = splitTabList(strings.TrimPrefix(body, "fields:"))
			case strings.HasPrefix(body, "units:"):
				units = splitTabList(strings.TrimPrefix(body, "units:"))
			}
			continue
		}
		if acc == nil {
			if len(names) == 0 {
				return nil, fmt.Errorf("scan: %s: data before #fields header", rel)
			}
			if !haveLat || !haveLon {
				return nil, fmt.Errorf("scan: %s: missing #lat/#lon headers", rel)
			}
			acc = newAccumulator(names, units)
		}
		cells := strings.Split(line, "\t")
		secs, err := strconv.ParseInt(cells[0], 10, 64)
		if err != nil || secs < minUnixSec || secs > maxUnixSec {
			return nil, fmt.Errorf("scan: %s line %d: bad timestamp %q", rel, lineNo, cells[0])
		}
		values := make([]float64, len(names))
		present := make([]bool, len(names))
		for i := 0; i < len(names) && 1+i < len(cells); i++ {
			cell := strings.TrimSpace(cells[1+i])
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("scan: %s line %d: bad value %q", rel, lineNo, cell)
			}
			if !finite(v) {
				continue // non-finite spellings count as missing
			}
			values[i] = v
			present[i] = true
		}
		acc.observe(time.Unix(secs, 0).UTC(), geo.Point{Lat: lat, Lon: lon}, values, present)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan: %s: %w", rel, err)
	}
	if acc == nil {
		if len(names) == 0 {
			return nil, fmt.Errorf("scan: %s: no #fields header", rel)
		}
		acc = newAccumulator(names, units)
	}
	return acc.feature(), nil
}

func splitTabList(s string) []string {
	parts := strings.Split(s, "\t")
	var out []string
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseJSONL reads the AUV format: a {"type":"header"} line then
// {"type":"obs"} lines.
func parseJSONL(rel string, data []byte) (*catalog.Feature, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var acc *accumulator
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			return nil, fmt.Errorf("scan: %s line %d: %w", rel, lineNo, err)
		}
		switch probe.Type {
		case "header":
			var hdr struct {
				Fields []struct {
					Name string `json:"name"`
					Unit string `json:"unit"`
				} `json:"fields"`
			}
			if err := json.Unmarshal([]byte(line), &hdr); err != nil {
				return nil, fmt.Errorf("scan: %s line %d: header: %w", rel, lineNo, err)
			}
			names := make([]string, len(hdr.Fields))
			units := make([]string, len(hdr.Fields))
			for i, f := range hdr.Fields {
				names[i] = f.Name
				units[i] = f.Unit
			}
			acc = newAccumulator(names, units)
		case "obs":
			if acc == nil {
				return nil, fmt.Errorf("scan: %s line %d: obs before header", rel, lineNo)
			}
			var rec struct {
				Time   time.Time `json:"time"`
				Lat    float64   `json:"lat"`
				Lon    float64   `json:"lon"`
				Values []float64 `json:"values"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return nil, fmt.Errorf("scan: %s line %d: obs: %w", rel, lineNo, err)
			}
			acc.observe(rec.Time, geo.Point{Lat: rec.Lat, Lon: rec.Lon}, rec.Values, nil)
		default:
			return nil, fmt.Errorf("scan: %s line %d: unknown record type %q", rel, lineNo, probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan: %s: %w", rel, err)
	}
	if acc == nil {
		return nil, fmt.Errorf("scan: %s: missing header line", rel)
	}
	return acc.feature(), nil
}
