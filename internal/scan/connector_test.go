package scan

import (
	"archive/tar"
	"archive/zip"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"metamess/internal/catalog"
)

// Compile-time interface compliance: the walker and every streaming
// connector are interchangeable ingest sources.
var (
	_ Connector = (*Scanner)(nil)
	_ Connector = (*TarConnector)(nil)
	_ Connector = (*ZipConnector)(nil)
	_ Connector = (*HTTPConnector)(nil)
)

// tarArchive packs root's files into a PAX tar image. PAX keeps
// sub-second mtimes, so tar-ingested features carry the same ModTime
// the walker stats.
func tarArchive(t testing.TB, root string) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		hdr, err := tar.FileInfoHeader(info, "")
		if err != nil {
			return err
		}
		hdr.Name = filepath.ToSlash(rel)
		hdr.Format = tar.FormatPAX
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		_, err = tw.Write(data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// zipArchive packs root's files into a zip image.
func zipArchive(t testing.TB, root string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		hdr := &zip.FileHeader{Name: filepath.ToSlash(rel), Method: zip.Deflate, Modified: info.ModTime()}
		w, err := zw.CreateHeader(hdr)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// catalogByPath snapshots a catalog into a path-keyed map of clones.
func catalogByPath(c *catalog.Catalog) map[string]*catalog.Feature {
	out := make(map[string]*catalog.Feature)
	c.ForEach(func(f *catalog.Feature) {
		out[f.Path] = f.Clone()
	})
	return out
}

// requireSameCatalog asserts two catalogs hold content-equal features
// (ScannedAt aside) for identical path sets.
func requireSameCatalog(t *testing.T, want, got *catalog.Catalog, label string) {
	t.Helper()
	w, g := catalogByPath(want), catalogByPath(got)
	if len(w) != len(g) {
		t.Fatalf("%s: %d features, want %d", label, len(g), len(w))
	}
	for p, wf := range w {
		gf, ok := g[p]
		if !ok {
			t.Fatalf("%s: missing %s", label, p)
		}
		if !wf.ContentEquals(gf) {
			wj, _ := json.Marshal(wf)
			gj, _ := json.Marshal(gf)
			t.Fatalf("%s: %s differs:\nwalker %s\n%s %s", label, p, wj, label, gj)
		}
	}
}

func TestTarConnectorMatchesWalker(t *testing.T) {
	root, _ := genArchive(t, 12, 5)
	walked := catalog.New()
	wres, err := New(Config{Root: root}).ScanInto(walked)
	if err != nil {
		t.Fatal(err)
	}
	if len(wres.Errors) != 0 {
		t.Fatalf("walker errors: %v", wres.Errors)
	}

	image := tarArchive(t, root)
	tarred := catalog.New()
	tres, err := TarBytesConnector(image).ScanInto(tarred)
	if err != nil {
		t.Fatal(err)
	}
	if len(tres.Errors) != 0 {
		t.Fatalf("tar errors: %v", tres.Errors)
	}
	if len(tres.Added) != len(wres.Added) || len(tres.Changed) != 0 {
		t.Errorf("tar delta added=%d changed=%d, walker added=%d", len(tres.Added), len(tres.Changed), len(wres.Added))
	}
	requireSameCatalog(t, walked, tarred, "tar")

	// The gzip-compressed stream is detected by magic bytes and yields
	// the identical catalog.
	var gzBuf bytes.Buffer
	gz := gzip.NewWriter(&gzBuf)
	if _, err := gz.Write(image); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	gzipped := catalog.New()
	if _, err := TarBytesConnector(gzBuf.Bytes()).ScanInto(gzipped); err != nil {
		t.Fatal(err)
	}
	requireSameCatalog(t, walked, gzipped, "tar.gz")
}

func TestZipConnectorMatchesWalker(t *testing.T) {
	root, _ := genArchive(t, 9, 11)
	// Zip timestamps carry second precision; align the fixture so the
	// walker's stat mtime and the zip entry mtime agree exactly.
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		sec := info.ModTime().Truncate(time.Second)
		return os.Chtimes(path, sec, sec)
	})
	if err != nil {
		t.Fatal(err)
	}
	walked := catalog.New()
	if _, err := New(Config{Root: root}).ScanInto(walked); err != nil {
		t.Fatal(err)
	}
	zipped := catalog.New()
	res, err := ZipBytesConnector(zipArchive(t, root)).ScanInto(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("zip errors: %v", res.Errors)
	}
	requireSameCatalog(t, walked, zipped, "zip")
}

func TestTarConnectorIncremental(t *testing.T) {
	root, m := genArchive(t, 9, 23)
	image := tarArchive(t, root)
	c := catalog.New()
	if _, err := TarBytesConnector(image).ScanInto(c); err != nil {
		t.Fatal(err)
	}
	n := c.Len()
	gen := c.Generation()

	// Re-ingesting the identical stream is a hash-skip for every entry:
	// no churn, no generation movement.
	res, err := TarBytesConnector(image).ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added)+len(res.Changed)+len(res.Removed) != 0 {
		t.Fatalf("identical stream produced churn: %+v", res.Stats)
	}
	if res.Stats.SkippedUnchanged != n || res.Stats.Parsed != 0 {
		t.Errorf("stats = %+v, want %d unchanged skips", res.Stats, n)
	}
	if c.Generation() != gen {
		t.Errorf("generation moved on no-op re-ingest: %d -> %d", gen, c.Generation())
	}

	// A stream missing one dataset retracts exactly that dataset.
	victim := m.Datasets[0].Path
	var pruned bytes.Buffer
	tw := tar.NewWriter(&pruned)
	tr := tar.NewReader(bytes.NewReader(image))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if filepath.ToSlash(hdr.Name) == victim {
			continue
		}
		if err := tw.WriteHeader(hdr); err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(tw, tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = TarBytesConnector(pruned.Bytes()).ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0] != catalog.IDForPath(victim) {
		t.Fatalf("removed = %v, want exactly %s", res.Removed, victim)
	}
	if c.Len() != n-1 {
		t.Errorf("catalog size %d after removal, want %d", c.Len(), n-1)
	}
}

func TestIngesterBoundsAndHostileNames(t *testing.T) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	add := func(name string, data []byte) {
		t.Helper()
		if err := tw.WriteHeader(&tar.Header{Name: name, Size: int64(len(data)), Mode: 0o644, Format: tar.FormatPAX}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	good := []byte("time,latitude,longitude,temp [C]\n2010-06-01T00:00:00Z,45.5,-124.4,11.2\n")
	add("push/good.csv", good)
	add("../escape.csv", good)
	add("/abs/rooted.csv", good)
	add("push/huge.csv", bytes.Repeat([]byte("a,b,c\n"), 64))
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	c := catalog.New()
	conn := TarBytesConnector(buf.Bytes())
	conn.MaxFileBytes = 128 // huge.csv (384 bytes) must be skipped, not buffered
	res, err := conn.ScanInto(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("catalog holds %d features, want only push/good.csv", c.Len())
	}
	if _, ok := c.Get(catalog.IDForPath("push/good.csv")); !ok {
		t.Error("good entry not ingested")
	}
	if res.Stats.SkippedOther != 1 {
		t.Errorf("oversize entry not skipped: %+v", res.Stats)
	}
}

func TestHTTPConnectorMatchesWalkerAndSkipsByHash(t *testing.T) {
	root, _ := genArchive(t, 9, 31)
	type object struct {
		rel  string
		data []byte
		mod  time.Time
	}
	var objects []object
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		objects = append(objects, object{rel: filepath.ToSlash(rel), data: data, mod: info.ModTime()})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var fetches atomic.Int64
	advertiseHashes := false
	mux := http.NewServeMux()
	mux.HandleFunc("/list", func(w http.ResponseWriter, r *http.Request) {
		var l HTTPListing
		for _, o := range objects {
			obj := HTTPObject{Path: o.rel, URL: "/obj/" + o.rel, Size: int64(len(o.data)), ModTime: o.mod}
			if advertiseHashes {
				obj.ContentHash = contentHash(o.data)
			}
			l.Objects = append(l.Objects, obj)
		}
		json.NewEncoder(w).Encode(l)
	})
	mux.HandleFunc("/obj/", func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		rel := strings.TrimPrefix(r.URL.Path, "/obj/")
		for _, o := range objects {
			if o.rel == rel {
				w.Write(o.data)
				return
			}
		}
		http.NotFound(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	walked := catalog.New()
	if _, err := New(Config{Root: root}).ScanInto(walked); err != nil {
		t.Fatal(err)
	}
	conn := &HTTPConnector{ListURL: srv.URL + "/list", Client: srv.Client()}
	fetched := catalog.New()
	res, err := conn.ScanInto(fetched)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("http errors: %v", res.Errors)
	}
	requireSameCatalog(t, walked, fetched, "http")
	// Only parseable objects are worth a fetch; a README in the listing
	// costs nothing.
	var datasets int64
	for _, o := range objects {
		switch strings.ToLower(filepath.Ext(o.rel)) {
		case ".csv", ".obs", ".jsonl":
			datasets++
		}
	}
	if got := fetches.Load(); got != datasets {
		t.Errorf("cold scan fetched %d objects, want %d", got, datasets)
	}

	// A hash-advertising listing resolves every unchanged check from the
	// listing alone: the rescan performs zero object fetches.
	advertiseHashes = true
	fetches.Store(0)
	res, err = conn.ScanInto(fetched)
	if err != nil {
		t.Fatal(err)
	}
	if got := fetches.Load(); got != 0 {
		t.Errorf("hash-advertised rescan fetched %d objects, want 0", got)
	}
	if len(res.Added)+len(res.Changed)+len(res.Removed) != 0 {
		t.Errorf("hash-advertised rescan produced churn: %+v", res.Stats)
	}
}

func TestTarConnectorTruncatedStreamAborts(t *testing.T) {
	root, _ := genArchive(t, 6, 41)
	image := tarArchive(t, root)
	c := catalog.New()
	if _, err := TarBytesConnector(image).ScanInto(c); err != nil {
		t.Fatal(err)
	}
	n := c.Len()
	// A connection dropped mid-archive must abort the scan — a half-read
	// stream must not masquerade as one with most datasets removed.
	if _, err := TarBytesConnector(image[:len(image)/3]).ScanInto(c); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if c.Len() != n {
		t.Errorf("truncated stream mutated the catalog: %d -> %d", n, c.Len())
	}
}

func TestConnectorNames(t *testing.T) {
	for _, tc := range []struct {
		conn Connector
		want string
	}{
		{New(Config{Root: "."}), "walker"},
		{TarBytesConnector(nil), "tar"},
		{ZipBytesConnector(nil), "zip"},
		{&HTTPConnector{}, "http"},
	} {
		if got := tc.conn.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestStatCallsCounter(t *testing.T) {
	root, _ := genArchive(t, 6, 51)
	before := StatCalls()
	if _, err := New(Config{Root: root}).ScanAll(); err != nil {
		t.Fatal(err)
	}
	if StatCalls() == before {
		t.Error("walker scan did not move the stat counter")
	}
	// Streaming ingest never touches the filesystem.
	image := tarArchive(t, root)
	before = StatCalls()
	if _, err := TarBytesConnector(image).ScanInto(catalog.New()); err != nil {
		t.Fatal(err)
	}
	if got := StatCalls(); got != before {
		t.Errorf("tar ingest performed %d stat calls", got-before)
	}
}
