package scan

import (
	"bytes"
	"encoding/json"
	"testing"

	"metamess/internal/catalog"
)

// FuzzScanParsers feeds malformed archive files to all three format
// parsers (cruise CSV, station OBS, AUV JSONL). The archive is the
// system's trust boundary — any file an operator drops under the root
// reaches these parsers verbatim — so the properties are:
//
//   - no input panics a parser (errors are the only rejection channel);
//   - a parser returns a feature XOR an error, never both or neither;
//   - parsing is deterministic: the same bytes yield byte-identical
//     summaries (the incremental scanner depends on this — a re-parse
//     of an unchanged file must not register as churn);
//   - an accepted summary is internally coherent: per-variable
//     observation counts are non-negative, never exceed the row count,
//     and every observed value range has Min ≤ Max.
func FuzzScanParsers(f *testing.F) {
	f.Add("csv", []byte("time,latitude,longitude,temp [C],salinity [PSU]\n"+
		"2010-06-01T00:00:00Z,45.5,-124.4,11.2,31.5\n"+
		"2010-06-01T01:00:00Z,45.6,-124.3,NaN,31.9\n"))
	f.Add("csv", []byte("time,latitude,longitude\n"))
	f.Add("obs", []byte("#station: saturn01\n#lat: 46.2\n#lon: -123.8\n"+
		"#fields:\ttemp\tsal\n#units:\tC\tPSU\n"+
		"1275350400\t11.2\t31.5\n1275354000\t\t31.9\n"))
	f.Add("obs", []byte("#fields:\ttemp\n1275350400\t11.2\n"))
	f.Add("jsonl", []byte(`{"type":"header","fields":[{"name":"temp","unit":"C"}]}`+"\n"+
		`{"type":"obs","time":"2010-06-01T00:00:00Z","lat":45.5,"lon":-124.4,"values":[11.2]}`+"\n"))
	f.Add("jsonl", []byte(`{"type":"obs"}`))
	f.Fuzz(func(t *testing.T, format string, data []byte) {
		var parse func(string, []byte) (*catalog.Feature, error)
		switch format {
		case "csv":
			parse = parseCSV
		case "obs":
			parse = parseOBS
		default:
			parse = parseJSONL
		}
		feat1, err1 := parse("fuzz/input.dat", data)
		if (feat1 == nil) == (err1 == nil) {
			t.Fatalf("feature XOR error violated: feature=%v err=%v", feat1, err1)
		}
		feat2, err2 := parse("fuzz/input.dat", data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic outcome: first err=%v, second err=%v", err1, err2)
		}
		if err1 != nil {
			return
		}
		// Every accepted summary must survive JSON persistence — this is
		// the invariant that flushed out ±Inf leaking through EmptyBBox
		// and "inf"/"nan" numeric spellings.
		j1, err := json.Marshal(feat1)
		if err != nil {
			t.Fatalf("accepted summary does not marshal: %v", err)
		}
		j2, _ := json.Marshal(feat2)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("nondeterministic summary:\n first %s\nsecond %s", j1, j2)
		}
		if feat1.RowCount < 0 {
			t.Fatalf("negative row count %d", feat1.RowCount)
		}
		for _, v := range feat1.Variables {
			if v.Count < 0 || v.Count > feat1.RowCount {
				t.Fatalf("variable %q count %d outside [0, rows=%d]", v.RawName, v.Count, feat1.RowCount)
			}
			if v.Count > 0 && v.Range.Min > v.Range.Max {
				t.Fatalf("variable %q inverted range [%g, %g]", v.RawName, v.Range.Min, v.Range.Max)
			}
		}
	})
}
