// Package scan implements the "scan archive" component of the wrangling
// chain: walk configured directories, sniff each file's format, parse it
// once, and summarize it into a catalog feature (spatial extent, temporal
// extent, per-variable observed ranges). The poster's annotation
// "Configure: directories, file types, naming conventions" maps onto
// Config.
//
// Scans are delta-aware: against an existing catalog the scanner skips
// files whose stat fingerprint (size + mtime) matches, verifies
// stat-stable files by content hash when the fingerprint cannot be
// trusted (the racy-mtime window), reports files that vanished from the
// archive, and classifies every parsed feature as added or changed.
// Parsing fans out over a bounded worker pool, so a cold scan of a large
// archive uses the hardware and a warm scan costs stat calls.
package scan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
)

// statCalls counts the os.Stat invocations the walker has made over the
// process lifetime. Push-fed deployments care that their ingest path
// never touches the filesystem: BenchmarkPushPublish asserts this
// counter does not move across a publish storm.
var statCalls atomic.Uint64

// StatCalls returns the number of stat calls the filesystem walker has
// performed so far in this process.
func StatCalls() uint64 { return statCalls.Load() }

// Config selects what to scan.
type Config struct {
	// Root is the archive root directory.
	Root string
	// Dirs are root-relative directories to scan; empty means the whole
	// archive. Adding a directory here is the poster's "specifying an
	// additional directory to scan" improvement step.
	Dirs []string
	// Extensions whitelists file extensions (with dot); empty means the
	// three known formats.
	Extensions []string
	// MaxFileBytes skips larger files (0 = no limit).
	MaxFileBytes int64
	// Workers bounds the parse worker pool (0 = GOMAXPROCS).
	Workers int
}

// Stats summarizes one scan run.
type Stats struct {
	// FilesSeen counts candidate files; Parsed counts full parses;
	// SkippedUnchanged counts incremental skips; SkippedOther counts
	// unknown types and oversized files; Failed counts stat, read, and
	// parse errors.
	FilesSeen, Parsed, SkippedUnchanged, SkippedOther, Failed int
	// HashVerified counts the subset of SkippedUnchanged whose stat
	// fingerprint was racy and had to be confirmed by content hash.
	HashVerified int
	// Removed counts previously cataloged files that no longer exist.
	Removed int
	// BytesParsed totals the raw bytes of parsed files.
	BytesParsed int64
	// Duration is the wall-clock scan time.
	Duration time.Duration
}

// Result carries the scan's features, delta classification, and
// per-file errors. Errors do not abort the scan: an archive with some
// corrupt files still yields a catalog for everything else.
type Result struct {
	Features []*catalog.Feature
	// Added and Changed partition Features by whether the existing
	// catalog already had the ID; on a from-scratch scan everything is
	// Added. Removed lists the IDs of cataloged files the walk no
	// longer found inside the scanned scope. All three are sorted.
	Added, Changed, Removed []string
	Errors                  []error
	Stats                   Stats

	// verified holds IDs whose unchanged-ness was confirmed by content
	// hash; ScanInto refreshes their scan stamps so the next run can
	// trust the stat fingerprint again.
	verified []string
}

// Scanner scans archives per its config.
type Scanner struct {
	cfg  Config
	exts map[string]bool
	// now is stubbed in tests.
	now func() time.Time
}

// New returns a scanner. Extensions default to .csv/.obs/.jsonl.
func New(cfg Config) *Scanner {
	exts := cfg.Extensions
	if len(exts) == 0 {
		exts = []string{".csv", ".obs", ".jsonl"}
	}
	set := make(map[string]bool, len(exts))
	for _, e := range exts {
		set[strings.ToLower(e)] = true
	}
	return &Scanner{cfg: cfg, exts: set, now: time.Now}
}

// Name implements Connector: the walker is the original, filesystem
// ingest source.
func (s *Scanner) Name() string { return "walker" }

// ScanAll walks the configured directories and parses every candidate
// file ("scan once").
func (s *Scanner) ScanAll() (*Result, error) {
	return s.scan(nil)
}

// ScanInto scans incrementally against an existing catalog: files whose
// stat fingerprint (or, when that is racy, content hash) matches the
// stored feature are skipped, parsed features are upserted into c, and
// features whose files vanished are deleted. This is the poster's
// "running & rerunning process" made cheap — the work tracks archive
// churn, not archive size.
func (s *Scanner) ScanInto(c *catalog.Catalog) (*Result, error) {
	res, err := s.scan(c)
	if err != nil {
		return nil, err
	}
	rejected := map[string]bool{}
	for _, f := range res.Features {
		if err := c.Upsert(f); err != nil {
			res.Errors = append(res.Errors, err)
			res.Stats.Failed++
			rejected[f.ID] = true
		}
	}
	if len(rejected) > 0 {
		// A feature the catalog refused is not part of the delta: it is
		// surfaced through Errors/Failed, and leaving its ID in
		// Added/Changed would keep the delta permanently non-empty (the
		// file re-parses and re-fails every run), defeating the
		// empty-delta fast paths for the whole archive.
		keep := func(ids []string) []string {
			out := ids[:0]
			for _, id := range ids {
				if !rejected[id] {
					out = append(out, id)
				}
			}
			return out
		}
		res.Added = keep(res.Added)
		res.Changed = keep(res.Changed)
	}
	for _, id := range res.Removed {
		c.Delete(id)
	}
	stamp := s.now()
	for _, id := range res.verified {
		c.SetScanStamp(id, stamp)
	}
	return res, nil
}

// candidate is one file the walk selected for scanning.
type candidate struct {
	abs, rel string
}

// racyWindow is the stat-trust guard: a stored fingerprint is only
// trusted when the file's mtime is at least this much older than the
// scan that recorded it. Inside the window an edit could have landed
// without moving size or mtime (filesystem timestamp granularity,
// deliberate mtime restoration), so the scanner re-reads the file and
// lets the content hash arbitrate. This is a stat-first trade-off, not
// a universal guarantee: an edit that restores a mtime already far in
// the past of the recorded scan is trusted-skipped without a read.
const racyWindow = 2 * time.Second

func (s *Scanner) scan(existing *catalog.Catalog) (*Result, error) {
	start := s.now()
	if s.cfg.Root == "" {
		return nil, fmt.Errorf("scan: config needs a root directory")
	}
	statCalls.Add(1)
	if st, err := os.Stat(s.cfg.Root); err != nil {
		return nil, fmt.Errorf("scan: root: %w", err)
	} else if !st.IsDir() {
		return nil, fmt.Errorf("scan: root %q is not a directory", s.cfg.Root)
	}
	dirs := s.cfg.Dirs
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	res := &Result{}

	// Phase 1: a serial walk collects candidates. seen records every
	// regular file (candidate or not) for de-duplication across
	// overlapping dirs and for deletion detection. Subtrees the walk
	// failed to read are remembered: their files were never observed,
	// so treating them as deleted would retract live datasets over a
	// transient EACCES/EIO — deletion detection skips them instead.
	var cands []candidate
	seen := make(map[string]bool)
	var walkErrored []string
	suppressRemovals := false
	for _, dir := range dirs {
		base := filepath.Join(s.cfg.Root, dir)
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				res.Errors = append(res.Errors, fmt.Errorf("scan: walk %s: %w", path, err))
				res.Stats.Failed++
				if rel, rerr := filepath.Rel(s.cfg.Root, path); rerr == nil && rel != "." {
					walkErrored = append(walkErrored, filepath.ToSlash(rel))
				} else {
					// The archive root itself failed (rel "." prefixes
					// nothing): no removal can be proven this scan.
					suppressRemovals = true
				}
				if d != nil && d.IsDir() {
					return fs.SkipDir
				}
				return nil
			}
			if d.IsDir() {
				return nil
			}
			rel, err := filepath.Rel(s.cfg.Root, path)
			if err != nil || seen[rel] {
				return nil
			}
			seen[rel] = true
			if s.exts[strings.ToLower(filepath.Ext(rel))] {
				cands = append(cands, candidate{abs: path, rel: rel})
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("scan: walk %s: %w", base, err)
		}
	}
	res.Stats.FilesSeen = len(cands)

	// Phase 2: parse over a bounded worker pool. Each worker writes
	// only its own outcome slots, so aggregation needs no locks and the
	// result is independent of scheduling order.
	outs := make([]fileOutcome, len(cands))
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					outs[i] = s.scanOne(cands[i].abs, cands[i].rel, existing)
				}
			}()
		}
		for i := range cands {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := range cands {
			outs[i] = s.scanOne(cands[i].abs, cands[i].rel, existing)
		}
	}

	// Phase 3: aggregate in candidate order, then detect deletions.
	for i, out := range outs {
		switch {
		case out.err != nil:
			res.Errors = append(res.Errors, out.err)
			res.Stats.Failed++
		case out.oversize:
			res.Stats.SkippedOther++
		case out.feature != nil:
			res.Features = append(res.Features, out.feature)
			res.Stats.Parsed++
			res.Stats.BytesParsed += out.feature.Bytes
			id := out.feature.ID
			if out.existed {
				res.Changed = append(res.Changed, id)
			} else {
				res.Added = append(res.Added, id)
			}
		default:
			res.Stats.SkippedUnchanged++
			if out.verified {
				res.Stats.HashVerified++
				res.verified = append(res.verified, catalog.IDForPath(cands[i].rel))
			}
		}
	}
	if existing != nil && !suppressRemovals {
		existing.ForEach(func(f *catalog.Feature) {
			if seen[f.Path] || !pathInScope(f.Path, dirs) {
				return
			}
			// Unreached, not deleted: the walk errored somewhere above
			// this path, so its absence proves nothing.
			p := filepath.ToSlash(f.Path)
			for _, e := range walkErrored {
				if p == e || strings.HasPrefix(p, e+"/") {
					return
				}
			}
			res.Removed = append(res.Removed, f.ID)
		})
		res.Stats.Removed = len(res.Removed)
	}

	sort.Slice(res.Features, func(i, j int) bool { return res.Features[i].ID < res.Features[j].ID })
	sort.Strings(res.Added)
	sort.Strings(res.Changed)
	sort.Strings(res.Removed)
	sort.Strings(res.verified)
	res.Stats.Duration = s.now().Sub(start)
	return res, nil
}

// pathInScope reports whether an archive-relative path lies inside one
// of the scanned directories — deletion detection must not retract
// features that simply live outside the current scan's scope.
func pathInScope(rel string, dirs []string) bool {
	p := filepath.ToSlash(rel)
	for _, dir := range dirs {
		d := filepath.ToSlash(dir)
		if d == "." || d == "" || p == d || strings.HasPrefix(p, d+"/") {
			return true
		}
	}
	return false
}

// fileOutcome is one candidate's scan result.
type fileOutcome struct {
	feature  *catalog.Feature
	existed  bool // the catalog already had this ID (feature != nil → changed)
	verified bool // unchanged, confirmed by content hash
	oversize bool
	err      error
}

// scanOne stats (and, when needed, reads) a single candidate file. The
// decision ladder is cheap-first: a stat mismatch or unknown file
// parses immediately; a stat match outside the racy window is trusted;
// a stat match inside it is read and the content hash arbitrates — the
// path that catches edits preserving both size and mtime.
func (s *Scanner) scanOne(abs, rel string, existing *catalog.Catalog) fileOutcome {
	statCalls.Add(1)
	st, err := os.Stat(abs)
	if err != nil {
		return fileOutcome{err: fmt.Errorf("scan: stat %s: %w", rel, err)}
	}
	if s.cfg.MaxFileBytes > 0 && st.Size() > s.cfg.MaxFileBytes {
		return fileOutcome{oversize: true}
	}
	existed := false
	var data []byte
	if existing != nil {
		size, mod, scannedAt, hash, ok := existing.StatView(catalog.IDForPath(rel))
		existed = ok
		if ok && size == st.Size() && mod.Equal(st.ModTime()) && hash != "" {
			if mod.Add(racyWindow).Before(scannedAt) {
				return fileOutcome{} // fingerprint trusted: unchanged
			}
			data, err = os.ReadFile(abs)
			if err != nil {
				return fileOutcome{err: fmt.Errorf("scan: read %s: %w", rel, err)}
			}
			if contentHash(data) == hash {
				return fileOutcome{verified: true}
			}
			// Content moved behind a stable stat: fall through to a
			// re-parse of the bytes already in hand.
		}
	}
	if data == nil {
		data, err = os.ReadFile(abs)
		if err != nil {
			return fileOutcome{err: fmt.Errorf("scan: read %s: %w", rel, err)}
		}
	}
	f, err := s.parseData(rel, data)
	if err != nil {
		return fileOutcome{err: err, existed: existed}
	}
	f.Bytes = st.Size()
	f.ModTime = st.ModTime()
	f.ScannedAt = s.now()
	return fileOutcome{feature: f, existed: existed}
}

// parseData sniffs and parses one file's bytes into a feature.
func (s *Scanner) parseData(rel string, data []byte) (*catalog.Feature, error) {
	return ParseBytes(rel, data)
}

// ParseBytes sniffs and parses one dataset's raw bytes into a catalog
// feature, exactly as the walker would for a file at the archive-relative
// path rel. It is the shared parse core every connector — walker, tar,
// HTTP — and every push producer goes through, so the three ingest paths
// summarize identical bytes into identical features. The caller owns the
// scan bookkeeping (Bytes, ModTime, ScannedAt).
func ParseBytes(rel string, data []byte) (*catalog.Feature, error) {
	format, ok := Sniff(rel, data)
	if !ok {
		return nil, fmt.Errorf("scan: %s: unrecognized format", rel)
	}
	var f *catalog.Feature
	var err error
	switch format {
	case archive.FormatCSV:
		f, err = parseCSV(rel, data)
	case archive.FormatOBS:
		f, err = parseOBS(rel, data)
	case archive.FormatJSONL:
		f, err = parseJSONL(rel, data)
	default:
		err = fmt.Errorf("scan: %s: no parser for format %q", rel, format)
	}
	if err != nil {
		return nil, err
	}
	f.ID = catalog.IDForPath(rel)
	f.Path = rel
	f.Format = string(format)
	f.Source = sourceOf(rel)
	f.ContentHash = contentHash(data)
	return f, nil
}

// contentHash fingerprints raw file bytes (truncated sha256, hex).
func contentHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// sourceOf derives the source collection from the path's first element —
// the archive's directory naming convention.
func sourceOf(rel string) string {
	rel = filepath.ToSlash(rel)
	if i := strings.IndexByte(rel, '/'); i > 0 {
		return rel[:i]
	}
	return "unknown"
}

// Sniff detects a file's format from its name and content head. The
// extension is a hint; content wins when they disagree.
func Sniff(path string, head []byte) (archive.Format, bool) {
	text := string(head[:min(len(head), 512)])
	trimmed := strings.TrimLeft(text, " \t\r\n")
	switch {
	case strings.HasPrefix(trimmed, "{"):
		return archive.FormatJSONL, true
	case strings.HasPrefix(trimmed, "#"):
		return archive.FormatOBS, true
	}
	// CSV: a header line containing commas, starting with a letter.
	if i := strings.IndexByte(trimmed, '\n'); i > 0 {
		first := trimmed[:i]
		if strings.Contains(first, ",") {
			return archive.FormatCSV, true
		}
	} else if strings.Contains(trimmed, ",") {
		return archive.FormatCSV, true
	}
	// Fall back to the extension.
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return archive.FormatCSV, true
	case ".obs":
		return archive.FormatOBS, true
	case ".jsonl":
		return archive.FormatJSONL, true
	}
	return "", false
}
