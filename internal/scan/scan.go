// Package scan implements the "scan archive" component of the wrangling
// chain: walk configured directories, sniff each file's format, parse it
// once, and summarize it into a catalog feature (spatial extent, temporal
// extent, per-variable observed ranges). The poster's annotation
// "Configure: directories, file types, naming conventions" maps onto
// Config.
package scan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
)

// Config selects what to scan.
type Config struct {
	// Root is the archive root directory.
	Root string
	// Dirs are root-relative directories to scan; empty means the whole
	// archive. Adding a directory here is the poster's "specifying an
	// additional directory to scan" improvement step.
	Dirs []string
	// Extensions whitelists file extensions (with dot); empty means the
	// three known formats.
	Extensions []string
	// MaxFileBytes skips larger files (0 = no limit).
	MaxFileBytes int64
}

// Stats summarizes one scan run.
type Stats struct {
	// FilesSeen counts candidate files; Parsed counts full parses;
	// SkippedUnchanged counts incremental skips; SkippedOther counts
	// unknown types and oversized files; Failed counts parse errors.
	FilesSeen, Parsed, SkippedUnchanged, SkippedOther, Failed int
	// BytesParsed totals the raw bytes of parsed files.
	BytesParsed int64
	// Duration is the wall-clock scan time.
	Duration time.Duration
}

// Result carries the scan's features and per-file errors. Errors do not
// abort the scan: an archive with some corrupt files still yields a
// catalog for everything else.
type Result struct {
	Features []*catalog.Feature
	Errors   []error
	Stats    Stats
}

// Scanner scans archives per its config.
type Scanner struct {
	cfg  Config
	exts map[string]bool
	// now is stubbed in tests.
	now func() time.Time
}

// New returns a scanner. Extensions default to .csv/.obs/.jsonl.
func New(cfg Config) *Scanner {
	exts := cfg.Extensions
	if len(exts) == 0 {
		exts = []string{".csv", ".obs", ".jsonl"}
	}
	set := make(map[string]bool, len(exts))
	for _, e := range exts {
		set[strings.ToLower(e)] = true
	}
	return &Scanner{cfg: cfg, exts: set, now: time.Now}
}

// ScanAll walks the configured directories and parses every candidate
// file ("scan once").
func (s *Scanner) ScanAll() (*Result, error) {
	return s.scan(nil)
}

// ScanInto scans incrementally against an existing catalog: files whose
// size and modification time match the stored feature are skipped, and
// all parsed features are upserted into c. This is the poster's "running
// & rerunning process" made cheap.
func (s *Scanner) ScanInto(c *catalog.Catalog) (*Result, error) {
	res, err := s.scan(c)
	if err != nil {
		return nil, err
	}
	for _, f := range res.Features {
		if err := c.Upsert(f); err != nil {
			res.Errors = append(res.Errors, err)
			res.Stats.Failed++
		}
	}
	return res, nil
}

func (s *Scanner) scan(existing *catalog.Catalog) (*Result, error) {
	start := s.now()
	if s.cfg.Root == "" {
		return nil, fmt.Errorf("scan: config needs a root directory")
	}
	if st, err := os.Stat(s.cfg.Root); err != nil {
		return nil, fmt.Errorf("scan: root: %w", err)
	} else if !st.IsDir() {
		return nil, fmt.Errorf("scan: root %q is not a directory", s.cfg.Root)
	}
	dirs := s.cfg.Dirs
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	res := &Result{}
	seen := make(map[string]bool)
	for _, dir := range dirs {
		base := filepath.Join(s.cfg.Root, dir)
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				res.Errors = append(res.Errors, fmt.Errorf("scan: walk %s: %w", path, err))
				res.Stats.Failed++
				if d != nil && d.IsDir() {
					return fs.SkipDir
				}
				return nil
			}
			if d.IsDir() {
				return nil
			}
			rel, err := filepath.Rel(s.cfg.Root, path)
			if err != nil || seen[rel] {
				return nil
			}
			seen[rel] = true
			s.scanOne(path, rel, existing, res)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("scan: walk %s: %w", base, err)
		}
	}
	sort.Slice(res.Features, func(i, j int) bool { return res.Features[i].ID < res.Features[j].ID })
	res.Stats.Duration = s.now().Sub(start)
	return res, nil
}

func (s *Scanner) scanOne(abs, rel string, existing *catalog.Catalog, res *Result) {
	ext := strings.ToLower(filepath.Ext(rel))
	if !s.exts[ext] {
		return // not a candidate at all (manifest.json etc.)
	}
	res.Stats.FilesSeen++
	st, err := os.Stat(abs)
	if err != nil {
		res.Errors = append(res.Errors, fmt.Errorf("scan: stat %s: %w", rel, err))
		res.Stats.Failed++
		return
	}
	if s.cfg.MaxFileBytes > 0 && st.Size() > s.cfg.MaxFileBytes {
		res.Stats.SkippedOther++
		return
	}
	if existing != nil {
		if old, ok := existing.Get(catalog.IDForPath(rel)); ok {
			if old.Bytes == st.Size() && old.ModTime.Equal(st.ModTime()) {
				res.Stats.SkippedUnchanged++
				return
			}
		}
	}
	f, err := s.parseFile(abs, rel)
	if err != nil {
		res.Errors = append(res.Errors, err)
		res.Stats.Failed++
		return
	}
	f.Bytes = st.Size()
	f.ModTime = st.ModTime()
	f.ScannedAt = s.now()
	res.Features = append(res.Features, f)
	res.Stats.Parsed++
	res.Stats.BytesParsed += st.Size()
}

// parseFile sniffs and parses one file into a feature.
func (s *Scanner) parseFile(abs, rel string) (*catalog.Feature, error) {
	data, err := os.ReadFile(abs)
	if err != nil {
		return nil, fmt.Errorf("scan: read %s: %w", rel, err)
	}
	format, ok := Sniff(rel, data)
	if !ok {
		return nil, fmt.Errorf("scan: %s: unrecognized format", rel)
	}
	var f *catalog.Feature
	switch format {
	case archive.FormatCSV:
		f, err = parseCSV(rel, data)
	case archive.FormatOBS:
		f, err = parseOBS(rel, data)
	case archive.FormatJSONL:
		f, err = parseJSONL(rel, data)
	default:
		err = fmt.Errorf("scan: %s: no parser for format %q", rel, format)
	}
	if err != nil {
		return nil, err
	}
	f.ID = catalog.IDForPath(rel)
	f.Path = rel
	f.Format = string(format)
	f.Source = sourceOf(rel)
	sum := sha256.Sum256(data)
	f.ContentHash = hex.EncodeToString(sum[:8])
	return f, nil
}

// sourceOf derives the source collection from the path's first element —
// the archive's directory naming convention.
func sourceOf(rel string) string {
	rel = filepath.ToSlash(rel)
	if i := strings.IndexByte(rel, '/'); i > 0 {
		return rel[:i]
	}
	return "unknown"
}

// Sniff detects a file's format from its name and content head. The
// extension is a hint; content wins when they disagree.
func Sniff(path string, head []byte) (archive.Format, bool) {
	text := string(head[:min(len(head), 512)])
	trimmed := strings.TrimLeft(text, " \t\r\n")
	switch {
	case strings.HasPrefix(trimmed, "{"):
		return archive.FormatJSONL, true
	case strings.HasPrefix(trimmed, "#"):
		return archive.FormatOBS, true
	}
	// CSV: a header line containing commas, starting with a letter.
	if i := strings.IndexByte(trimmed, '\n'); i > 0 {
		first := trimmed[:i]
		if strings.Contains(first, ",") {
			return archive.FormatCSV, true
		}
	} else if strings.Contains(trimmed, ",") {
		return archive.FormatCSV, true
	}
	// Fall back to the extension.
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return archive.FormatCSV, true
	case ".obs":
		return archive.FormatOBS, true
	case ".jsonl":
		return archive.FormatJSONL, true
	}
	return "", false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
