package scan

import (
	"archive/tar"
	"archive/zip"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"path"
	"sort"
	"strings"
	"time"

	"metamess/internal/catalog"
)

// Connector is one ingest source for the wrangling chain's scan step.
// The filesystem walker (*Scanner) is the original implementation; the
// streaming archive and HTTP connectors below make it one source among
// several. Every implementation produces the same Result shape — parsed
// features plus an added/changed/removed classification against the
// existing catalog — so the chain downstream (transforms, validation,
// publish, journal, replication) is connector-agnostic.
type Connector interface {
	// Name identifies the connector in reports and logs.
	Name() string
	// ScanInto ingests the source incrementally against c: unchanged
	// datasets (by content hash) are skipped, parsed features are
	// upserted, and datasets that vanished from the source are deleted.
	ScanInto(c *catalog.Catalog) (*Result, error)
}

// DefaultMaxEntryBytes bounds a single streamed entry when a connector's
// MaxFileBytes is unset. Streaming connectors must hold at most one
// entry in memory at a time, and never an unbounded one.
const DefaultMaxEntryBytes = 8 << 20

// ingester accumulates the streaming connectors' shared classification
// state: each entry is parsed (or hash-skipped) as it streams past, and
// finish computes removals against the existing catalog — the same
// added/changed/removed contract the walker produces.
type ingester struct {
	existing *catalog.Catalog
	max      int64
	exts     map[string]bool
	now      time.Time
	res      *Result
	seen     map[string]bool
}

func newIngester(existing *catalog.Catalog, maxBytes int64, extensions []string) *ingester {
	exts := extensions
	if len(exts) == 0 {
		exts = []string{".csv", ".obs", ".jsonl"}
	}
	set := make(map[string]bool, len(exts))
	for _, e := range exts {
		set[strings.ToLower(e)] = true
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxEntryBytes
	}
	return &ingester{
		existing: existing,
		max:      maxBytes,
		exts:     set,
		now:      time.Now(),
		res:      &Result{},
		seen:     make(map[string]bool),
	}
}

// cleanEntryPath normalizes a streamed entry name to an archive-relative
// slash path, rejecting absolute paths and parent-directory escapes
// (zip-slip style names must not alias other entries' identities).
func cleanEntryPath(name string) (string, bool) {
	p := path.Clean(strings.ReplaceAll(name, "\\", "/"))
	if p == "." || p == "" || strings.HasPrefix(p, "/") || p == ".." || strings.HasPrefix(p, "../") {
		return "", false
	}
	return p, true
}

// entry ingests one streamed object. r yields the entry's bytes; at most
// max+1 bytes are read from it, so memory stays bounded no matter what
// the stream header claimed. Returns any read error (a truncated
// transfer aborts the scan — a half-read source must not be mistaken
// for one with files removed).
func (in *ingester) entry(name string, size int64, mod time.Time, r io.Reader) error {
	rel, ok := cleanEntryPath(name)
	if !ok || in.seen[rel] {
		return nil
	}
	// Every well-formed entry marks presence — including formats we do
	// not parse — exactly like the walker's seen map, so removal
	// detection never retracts a dataset whose bytes were in the stream.
	in.seen[rel] = true
	if !in.exts[strings.ToLower(path.Ext(rel))] {
		return nil
	}
	in.res.Stats.FilesSeen++
	if size > in.max {
		in.res.Stats.SkippedOther++
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(r, in.max+1))
	if err != nil {
		return fmt.Errorf("scan: read %s: %w", rel, err)
	}
	if int64(len(data)) > in.max {
		in.res.Stats.SkippedOther++
		return nil
	}
	hash := contentHash(data)
	existed := false
	if in.existing != nil {
		_, _, _, storedHash, ok := in.existing.StatView(catalog.IDForPath(rel))
		existed = ok
		if ok && storedHash == hash {
			// Same bytes as the cataloged feature: the summary cannot
			// have changed. Streaming sources have no trustworthy stat
			// fingerprint, so the content hash is the unchanged check.
			in.res.Stats.SkippedUnchanged++
			in.res.Stats.HashVerified++
			return nil
		}
	}
	f, err := ParseBytes(rel, data)
	if err != nil {
		in.res.Errors = append(in.res.Errors, err)
		in.res.Stats.Failed++
		return nil
	}
	f.Bytes = int64(len(data))
	f.ModTime = mod
	f.ScannedAt = in.now
	in.res.Features = append(in.res.Features, f)
	in.res.Stats.Parsed++
	in.res.Stats.BytesParsed += f.Bytes
	if existed {
		in.res.Changed = append(in.res.Changed, f.ID)
	} else {
		in.res.Added = append(in.res.Added, f.ID)
	}
	return nil
}

// finish runs removal detection (a cataloged dataset absent from the
// stream vanished from the source) and sorts the result like the walker.
func (in *ingester) finish() *Result {
	if in.existing != nil {
		in.existing.ForEach(func(f *catalog.Feature) {
			if !in.seen[f.Path] {
				in.res.Removed = append(in.res.Removed, f.ID)
			}
		})
		in.res.Stats.Removed = len(in.res.Removed)
	}
	sort.Slice(in.res.Features, func(i, j int) bool { return in.res.Features[i].ID < in.res.Features[j].ID })
	sort.Strings(in.res.Added)
	sort.Strings(in.res.Changed)
	sort.Strings(in.res.Removed)
	return in.res
}

// applyResult upserts the parsed features and deletes the removed IDs —
// the connector half of Scanner.ScanInto's contract.
func applyResult(c *catalog.Catalog, res *Result) {
	rejected := map[string]bool{}
	for _, f := range res.Features {
		if err := c.Upsert(f); err != nil {
			res.Errors = append(res.Errors, err)
			res.Stats.Failed++
			rejected[f.ID] = true
		}
	}
	if len(rejected) > 0 {
		keep := func(ids []string) []string {
			out := ids[:0]
			for _, id := range ids {
				if !rejected[id] {
					out = append(out, id)
				}
			}
			return out
		}
		res.Added = keep(res.Added)
		res.Changed = keep(res.Changed)
	}
	for _, id := range res.Removed {
		c.Delete(id)
	}
}

// --- tar ---------------------------------------------------------------

// TarConnector ingests a tar stream (optionally gzip-compressed,
// detected by magic bytes) as the archive: entry names are the
// archive-relative dataset paths. Entries are parsed one at a time as
// they stream past — memory is bounded by MaxFileBytes regardless of
// archive size, and the archive is never buffered whole.
type TarConnector struct {
	// Open returns the stream; called once per ScanInto.
	Open func() (io.ReadCloser, error)
	// MaxFileBytes bounds one entry (0 = DefaultMaxEntryBytes); larger
	// entries are skipped without buffering.
	MaxFileBytes int64
	// Extensions whitelists entry extensions (empty = the known formats).
	Extensions []string
}

// TarBytesConnector ingests an in-memory tar (or tar.gz) image — the
// test and fuzz harness entry point.
func TarBytesConnector(data []byte) *TarConnector {
	return &TarConnector{Open: func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(data)), nil
	}}
}

// Name implements Connector.
func (t *TarConnector) Name() string { return "tar" }

// ScanInto implements Connector.
func (t *TarConnector) ScanInto(c *catalog.Catalog) (*Result, error) {
	start := time.Now()
	if t.Open == nil {
		return nil, fmt.Errorf("scan: tar connector needs an Open function")
	}
	rc, err := t.Open()
	if err != nil {
		return nil, fmt.Errorf("scan: tar open: %w", err)
	}
	defer rc.Close()
	var src io.Reader
	// Transparent gzip: sniff the two magic bytes without consuming them.
	br := newPeekReader(rc)
	if head, _ := br.Peek(2); len(head) == 2 && head[0] == 0x1f && head[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("scan: tar gzip: %w", err)
		}
		defer gz.Close()
		src = gz
	} else {
		src = br
	}

	in := newIngester(c, t.MaxFileBytes, t.Extensions)
	tr := tar.NewReader(src)
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("scan: tar stream: %w", err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		if err := in.entry(hdr.Name, hdr.Size, hdr.ModTime, tr); err != nil {
			return nil, err
		}
	}
	res := in.finish()
	applyResult(c, res)
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// --- zip ---------------------------------------------------------------

// ZipConnector ingests a zip archive. The zip central directory needs
// random access, so the source is an io.ReaderAt (a file or an
// in-memory image); each entry's bytes still stream through the shared
// bounded-entry parse path, never the whole archive at once.
type ZipConnector struct {
	// ReaderAt and Size locate the zip image.
	ReaderAt io.ReaderAt
	Size     int64
	// MaxFileBytes bounds one entry (0 = DefaultMaxEntryBytes).
	MaxFileBytes int64
	// Extensions whitelists entry extensions (empty = the known formats).
	Extensions []string
}

// ZipBytesConnector ingests an in-memory zip image.
func ZipBytesConnector(data []byte) *ZipConnector {
	return &ZipConnector{ReaderAt: bytes.NewReader(data), Size: int64(len(data))}
}

// Name implements Connector.
func (z *ZipConnector) Name() string { return "zip" }

// ScanInto implements Connector.
func (z *ZipConnector) ScanInto(c *catalog.Catalog) (*Result, error) {
	start := time.Now()
	if z.ReaderAt == nil {
		return nil, fmt.Errorf("scan: zip connector needs a ReaderAt")
	}
	zr, err := zip.NewReader(z.ReaderAt, z.Size)
	if err != nil {
		return nil, fmt.Errorf("scan: zip open: %w", err)
	}
	in := newIngester(c, z.MaxFileBytes, z.Extensions)
	for _, zf := range zr.File {
		if zf.FileInfo().IsDir() {
			continue
		}
		// Oversize entries are skipped by declared size before any read;
		// the ingester re-checks the actual bytes read.
		rc, err := zf.Open()
		if err != nil {
			in.res.Errors = append(in.res.Errors, fmt.Errorf("scan: zip entry %s: %w", zf.Name, err))
			in.res.Stats.Failed++
			continue
		}
		err = in.entry(zf.Name, int64(zf.UncompressedSize64), zf.Modified, rc)
		rc.Close()
		if err != nil {
			in.res.Errors = append(in.res.Errors, err)
			in.res.Stats.Failed++
		}
	}
	res := in.finish()
	applyResult(c, res)
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// --- http --------------------------------------------------------------

// HTTPObject is one entry of an HTTP connector listing.
type HTTPObject struct {
	// Path is the archive-relative dataset path.
	Path string `json:"path"`
	// URL fetches the object's bytes; relative URLs resolve against the
	// listing URL.
	URL string `json:"url,omitempty"`
	// Size and ModTime are optional object metadata.
	Size    int64     `json:"size,omitempty"`
	ModTime time.Time `json:"modTime,omitzero"`
	// ContentHash, when the producer supplies it, lets the connector
	// skip fetching an unchanged object entirely (it must equal the
	// catalog's truncated-sha256 content hash).
	ContentHash string `json:"contentHash,omitempty"`
}

// HTTPListing is the JSON body an HTTP connector listing endpoint
// returns.
type HTTPListing struct {
	Objects []HTTPObject `json:"objects"`
}

// HTTPConnector ingests an object store over HTTP: one GET against
// ListURL returns an HTTPListing, then each new or changed object is
// fetched and streamed through the shared bounded parse path. A listing
// that advertises content hashes turns the unchanged check into zero
// object fetches — the push-era analogue of the walker's stat skip.
type HTTPConnector struct {
	// ListURL is the listing endpoint.
	ListURL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// MaxFileBytes bounds one object (0 = DefaultMaxEntryBytes).
	MaxFileBytes int64
	// Extensions whitelists object extensions (empty = the known formats).
	Extensions []string
}

// Name implements Connector.
func (h *HTTPConnector) Name() string { return "http" }

// ScanInto implements Connector.
func (h *HTTPConnector) ScanInto(c *catalog.Catalog) (*Result, error) {
	start := time.Now()
	if h.ListURL == "" {
		return nil, fmt.Errorf("scan: http connector needs a ListURL")
	}
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	base, err := url.Parse(h.ListURL)
	if err != nil {
		return nil, fmt.Errorf("scan: http listing url: %w", err)
	}
	listing, err := fetchListing(client, h.ListURL)
	if err != nil {
		return nil, err
	}
	in := newIngester(c, h.MaxFileBytes, h.Extensions)
	for _, obj := range listing.Objects {
		rel, ok := cleanEntryPath(obj.Path)
		if !ok || in.seen[rel] {
			continue
		}
		// An object the parsers would never accept is not worth a fetch;
		// presence still counts so it is never mistaken for a removal.
		if !in.exts[strings.ToLower(path.Ext(rel))] {
			in.seen[rel] = true
			continue
		}
		// A hash-advertising listing resolves the unchanged check before
		// any fetch; mark presence so the object is not retracted.
		if obj.ContentHash != "" && c != nil {
			if _, _, _, storedHash, ok := c.StatView(catalog.IDForPath(rel)); ok && storedHash == obj.ContentHash {
				in.seen[rel] = true
				in.res.Stats.FilesSeen++
				in.res.Stats.SkippedUnchanged++
				in.res.Stats.HashVerified++
				continue
			}
		}
		objURL := obj.URL
		if objURL == "" {
			objURL = rel
		}
		ref, err := url.Parse(objURL)
		if err != nil {
			in.res.Errors = append(in.res.Errors, fmt.Errorf("scan: http object %s: %w", rel, err))
			in.res.Stats.Failed++
			in.seen[rel] = true
			continue
		}
		resp, err := client.Get(base.ResolveReference(ref).String())
		if err != nil {
			return nil, fmt.Errorf("scan: http fetch %s: %w", rel, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			in.res.Errors = append(in.res.Errors, fmt.Errorf("scan: http fetch %s: status %d", rel, resp.StatusCode))
			in.res.Stats.Failed++
			in.seen[rel] = true
			continue
		}
		err = in.entry(rel, obj.Size, obj.ModTime, resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	res := in.finish()
	applyResult(c, res)
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// fetchListing GETs and decodes the object listing.
func fetchListing(client *http.Client, listURL string) (*HTTPListing, error) {
	resp, err := client.Get(listURL)
	if err != nil {
		return nil, fmt.Errorf("scan: http listing: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scan: http listing: status %d", resp.StatusCode)
	}
	var listing HTTPListing
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&listing); err != nil {
		return nil, fmt.Errorf("scan: http listing decode: %w", err)
	}
	return &listing, nil
}

// peekReader is the minimal buffered reader the tar connector needs to
// sniff gzip magic without dragging bufio's full buffer size into the
// bounded-memory accounting.
type peekReader struct {
	r    io.Reader
	head []byte
}

func newPeekReader(r io.Reader) *peekReader { return &peekReader{r: r} }

// Peek returns up to n leading bytes without consuming them.
func (p *peekReader) Peek(n int) ([]byte, error) {
	for len(p.head) < n {
		buf := make([]byte, n-len(p.head))
		m, err := p.r.Read(buf)
		p.head = append(p.head, buf[:m]...)
		if err != nil {
			return p.head, err
		}
	}
	return p.head[:n], nil
}

func (p *peekReader) Read(b []byte) (int, error) {
	if len(p.head) > 0 {
		n := copy(b, p.head)
		p.head = p.head[n:]
		return n, nil
	}
	return p.r.Read(b)
}
