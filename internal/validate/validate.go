// Package validate implements the poster's fourth curatorial activity,
// "validating process results": rule-based checks over a working catalog
// that gate publication. The poster's three examples are implemented
// directly — every file in a directory has the same type, every
// harvested variable name occurs in the synonym table as a preferred or
// alternate term, and expected datasets show up — plus checks for unit
// resolution and physically plausible value ranges.
package validate

import (
	"fmt"
	"path"
	"path/filepath"
	"sort"

	"metamess/internal/catalog"
	"metamess/internal/semdiv"
	"metamess/internal/units"
	"metamess/internal/vocab"
)

// Severity grades a finding.
type Severity int

// Severities.
const (
	Warning Severity = iota
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one validation hit.
type Finding struct {
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	// Dataset is the offending dataset path, when the finding is
	// dataset-specific.
	Dataset string `json:"dataset,omitempty"`
	Detail  string `json:"detail"`
}

// Report aggregates the findings of a validation run.
type Report struct {
	Findings []Finding `json:"findings"`
	// ChecksRun lists the executed checks in order.
	ChecksRun []string `json:"checksRun"`
}

// Errors counts error-severity findings.
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == Error {
			n++
		}
	}
	return n
}

// Warnings counts warning-severity findings.
func (r *Report) Warnings() int { return len(r.Findings) - r.Errors() }

// OK reports whether the catalog may be published (no errors).
func (r *Report) OK() bool { return r.Errors() == 0 }

// Context supplies the curated state checks consult.
type Context struct {
	Catalog   *catalog.Catalog
	Knowledge *semdiv.Knowledge
	Units     *units.Registry
	// ExpectedPaths lists dataset paths that must be present.
	ExpectedPaths []string
}

// Check is one validation rule.
type Check interface {
	Name() string
	Run(ctx *Context) []Finding
}

// Run executes checks in order and aggregates their findings.
func Run(ctx *Context, checks ...Check) *Report {
	r := &Report{}
	for _, c := range checks {
		r.ChecksRun = append(r.ChecksRun, c.Name())
		r.Findings = append(r.Findings, c.Run(ctx)...)
	}
	return r
}

// DefaultChecks returns the standard check suite.
func DefaultChecks() []Check {
	return []Check{
		SameTypeDirectory{},
		SynonymCoverage{},
		ExpectedDatasets{},
		UnitsResolved{},
		PlausibleRanges{Slack: 0.5},
	}
}

// SameTypeDirectory verifies that all files in a directory are of the
// same type — the poster's first validation example.
type SameTypeDirectory struct{}

// Name implements Check.
func (SameTypeDirectory) Name() string { return "same-type-directory" }

// Run implements Check.
func (SameTypeDirectory) Run(ctx *Context) []Finding {
	byDir := make(map[string]map[string][]string) // dir -> format -> paths
	for _, f := range ctx.Catalog.Snapshot().All() {
		dir := path.Dir(filepath.ToSlash(f.Path))
		if byDir[dir] == nil {
			byDir[dir] = make(map[string][]string)
		}
		byDir[dir][f.Format] = append(byDir[dir][f.Format], f.Path)
	}
	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var out []Finding
	for _, d := range dirs {
		formats := byDir[d]
		if len(formats) <= 1 {
			continue
		}
		names := make([]string, 0, len(formats))
		for f := range formats {
			names = append(names, f)
		}
		sort.Strings(names)
		out = append(out, Finding{
			Check:    "same-type-directory",
			Severity: Error,
			Detail:   fmt.Sprintf("directory %s mixes file types %v", d, names),
		})
	}
	return out
}

// SynonymCoverage verifies that every harvested (non-excluded) variable
// name occurs in the curated knowledge as a canonical name, preferred or
// alternate term — the poster's second validation example. Uncovered
// names are warnings: they are the residual mess the discovery step
// exists to handle, not publication blockers.
type SynonymCoverage struct {
	// AsError escalates uncovered names to errors (strict publish gates).
	AsError bool
}

// Name implements Check.
func (SynonymCoverage) Name() string { return "synonym-coverage" }

// Run implements Check.
func (s SynonymCoverage) Run(ctx *Context) []Finding {
	if ctx.Knowledge == nil {
		return []Finding{{
			Check: "synonym-coverage", Severity: Error,
			Detail: "no knowledge base supplied",
		}}
	}
	cls := semdiv.NewClassifier(ctx.Knowledge)
	sev := Warning
	if s.AsError {
		sev = Error
	}
	var out []Finding
	for _, vc := range ctx.Catalog.VariableNameCounts() {
		// Excluded bookkeeping variables are exempt; they are marked, not
		// translated. A name still excluded shows only in detail views.
		f := cls.Classify(vc.Value)
		switch f.Category {
		case semdiv.CatClean, semdiv.CatExcessive:
			continue
		case semdiv.CatSynonym, semdiv.CatAbbreviation, semdiv.CatMinorVariation,
			semdiv.CatSourceContext, semdiv.CatMultiLevel, semdiv.CatAmbiguous:
			out = append(out, Finding{
				Check: "synonym-coverage", Severity: sev,
				Detail: fmt.Sprintf("name %q (%d occurrences) is %s, not yet resolved", vc.Value, vc.Count, f.Category),
			})
		default:
			out = append(out, Finding{
				Check: "synonym-coverage", Severity: sev,
				Detail: fmt.Sprintf("name %q (%d occurrences) not covered by synonym table", vc.Value, vc.Count),
			})
		}
	}
	return out
}

// ExpectedDatasets verifies that configured datasets are present — the
// poster's third validation example ("determining that expected datasets
// show up").
type ExpectedDatasets struct{}

// Name implements Check.
func (ExpectedDatasets) Name() string { return "expected-datasets" }

// Run implements Check.
func (ExpectedDatasets) Run(ctx *Context) []Finding {
	var out []Finding
	for _, p := range ctx.ExpectedPaths {
		if _, ok := ctx.Catalog.Get(catalog.IDForPath(p)); !ok {
			out = append(out, Finding{
				Check: "expected-datasets", Severity: Error,
				Dataset: p,
				Detail:  fmt.Sprintf("expected dataset %s missing from catalog", p),
			})
		}
	}
	return out
}

// UnitsResolved warns about unit strings the registry cannot resolve.
type UnitsResolved struct{}

// Name implements Check.
func (UnitsResolved) Name() string { return "units-resolved" }

// Run implements Check.
func (UnitsResolved) Run(ctx *Context) []Finding {
	if ctx.Units == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []Finding
	for _, f := range ctx.Catalog.Snapshot().All() {
		for _, v := range f.Variables {
			if v.Unit == "" || seen[v.Unit] {
				continue
			}
			seen[v.Unit] = true
			if _, ok := ctx.Units.Lookup(v.Unit); !ok {
				out = append(out, Finding{
					Check: "units-resolved", Severity: Warning,
					Dataset: f.Path,
					Detail:  fmt.Sprintf("unit %q (first seen on %q) not in unit registry", v.Unit, v.RawName),
				})
			}
		}
	}
	return out
}

// PlausibleRanges errors when an observed variable range falls wildly
// outside the vocabulary's typical physical range — a symptom of a
// mis-parsed file or a unit mix-up.
type PlausibleRanges struct {
	// Slack widens the typical range by this fraction on each side
	// before comparing (0.5 = 50%).
	Slack float64
}

// Name implements Check.
func (PlausibleRanges) Name() string { return "plausible-ranges" }

// Run implements Check.
func (p PlausibleRanges) Run(ctx *Context) []Finding {
	if ctx.Knowledge == nil {
		return nil
	}
	byName := vocab.ByName(ctx.Knowledge.Vocabulary)
	var out []Finding
	for _, f := range ctx.Catalog.Snapshot().All() {
		for _, v := range f.Variables {
			cv, ok := byName[v.Name]
			if !ok || v.Count == 0 {
				continue
			}
			width := cv.Typical.Width()
			lo := cv.Typical.Min - p.Slack*width
			hi := cv.Typical.Max + p.Slack*width
			if v.Range.Min < lo || v.Range.Max > hi {
				out = append(out, Finding{
					Check: "plausible-ranges", Severity: Error,
					Dataset: f.Path,
					Detail: fmt.Sprintf("%s observed %s, outside plausible [%g..%g]",
						v.Name, v.Range, lo, hi),
				})
			}
		}
	}
	return out
}
