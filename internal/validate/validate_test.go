package validate

import (
	"strings"
	"testing"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
	"metamess/internal/semdiv"
	"metamess/internal/units"
	"metamess/internal/vocab"
)

func mkFeat(path, format string, vars ...catalog.VarFeature) *catalog.Feature {
	return &catalog.Feature{
		ID:     catalog.IDForPath(path),
		Path:   path,
		Source: "stations",
		Format: format,
		BBox:   geo.BBox{MinLat: 46, MinLon: -124, MaxLat: 46.1, MaxLon: -123.9},
		Time: geo.NewTimeRange(
			time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC),
			time.Date(2010, 6, 2, 0, 0, 0, 0, time.UTC)),
		Variables: vars,
	}
}

func mkVar(name string, min, max float64) catalog.VarFeature {
	return catalog.VarFeature{
		RawName: name, Name: name, Unit: "degC",
		Range: geo.ValueRange{Min: min, Max: max}, Count: 10,
	}
}

func ctxWith(t *testing.T, feats ...*catalog.Feature) *Context {
	t.Helper()
	c := catalog.New()
	for _, f := range feats {
		if err := c.Upsert(f); err != nil {
			t.Fatal(err)
		}
	}
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	return &Context{Catalog: c, Knowledge: k, Units: units.NewRegistry()}
}

func TestSameTypeDirectory(t *testing.T) {
	ctx := ctxWith(t,
		mkFeat("stations/2010/a.obs", "obs", mkVar("salinity", 0, 30)),
		mkFeat("stations/2010/b.obs", "obs", mkVar("salinity", 0, 30)),
	)
	if got := (SameTypeDirectory{}).Run(ctx); len(got) != 0 {
		t.Errorf("uniform directory flagged: %v", got)
	}
	// Mix a CSV into the obs directory.
	bad := mkFeat("stations/2010/c.csv", "csv", mkVar("salinity", 0, 30))
	if err := ctx.Catalog.Upsert(bad); err != nil {
		t.Fatal(err)
	}
	got := (SameTypeDirectory{}).Run(ctx)
	if len(got) != 1 || got[0].Severity != Error {
		t.Fatalf("mixed directory findings = %v", got)
	}
	if !strings.Contains(got[0].Detail, "stations/2010") {
		t.Errorf("finding does not name the directory: %s", got[0].Detail)
	}
}

func TestSynonymCoverage(t *testing.T) {
	ctx := ctxWith(t,
		mkFeat("a.obs", "obs",
			mkVar("salinity", 0, 30),       // clean
			mkVar("airtemp", 0, 20),        // known synonym -> warning (not yet resolved)
			mkVar("zz_mystery_name", 0, 1), // unknown -> warning
		),
	)
	got := (SynonymCoverage{}).Run(ctx)
	if len(got) != 2 {
		t.Fatalf("findings = %v", got)
	}
	for _, f := range got {
		if f.Severity != Warning {
			t.Errorf("default severity = %v, want warning", f.Severity)
		}
	}
	strict := (SynonymCoverage{AsError: true}).Run(ctx)
	for _, f := range strict {
		if f.Severity != Error {
			t.Errorf("strict severity = %v, want error", f.Severity)
		}
	}
	// Excessive variables are exempt.
	ex := ctxWith(t, mkFeat("b.obs", "obs", mkVar("qa_level", 0, 4)))
	if got := (SynonymCoverage{}).Run(ex); len(got) != 0 {
		t.Errorf("excessive name flagged: %v", got)
	}
	// Missing knowledge is itself an error.
	noK := &Context{Catalog: catalog.New()}
	if got := (SynonymCoverage{}).Run(noK); len(got) != 1 || got[0].Severity != Error {
		t.Errorf("missing knowledge findings = %v", got)
	}
}

func TestExpectedDatasets(t *testing.T) {
	ctx := ctxWith(t, mkFeat("stations/2010/a.obs", "obs", mkVar("salinity", 0, 30)))
	ctx.ExpectedPaths = []string{"stations/2010/a.obs", "stations/2010/missing.obs"}
	got := (ExpectedDatasets{}).Run(ctx)
	if len(got) != 1 || got[0].Severity != Error {
		t.Fatalf("findings = %v", got)
	}
	if got[0].Dataset != "stations/2010/missing.obs" {
		t.Errorf("dataset = %q", got[0].Dataset)
	}
}

func TestUnitsResolved(t *testing.T) {
	f := mkFeat("a.obs", "obs", mkVar("salinity", 0, 30))
	f.Variables[0].Unit = "furlongs"
	ctx := ctxWith(t, f)
	got := (UnitsResolved{}).Run(ctx)
	if len(got) != 1 || !strings.Contains(got[0].Detail, "furlongs") {
		t.Fatalf("findings = %v", got)
	}
	// Each unknown unit is reported once even when repeated.
	f2 := mkFeat("b.obs", "obs", mkVar("turbidity", 0, 30))
	f2.Variables[0].Unit = "furlongs"
	_ = ctx.Catalog.Upsert(f2)
	if got := (UnitsResolved{}).Run(ctx); len(got) != 1 {
		t.Errorf("duplicate unit reported twice: %v", got)
	}
	// No registry: check is a no-op.
	ctx.Units = nil
	if got := (UnitsResolved{}).Run(ctx); got != nil {
		t.Error("nil registry should disable the check")
	}
}

func TestPlausibleRanges(t *testing.T) {
	// salinity typical is [0,34]; 500 is wildly out.
	ctx := ctxWith(t, mkFeat("a.obs", "obs", mkVar("salinity", 0, 500)))
	got := (PlausibleRanges{Slack: 0.5}).Run(ctx)
	if len(got) != 1 || got[0].Severity != Error {
		t.Fatalf("findings = %v", got)
	}
	// Within slack: fine.
	ok := ctxWith(t, mkFeat("b.obs", "obs", mkVar("salinity", 0, 40)))
	if got := (PlausibleRanges{Slack: 0.5}).Run(ok); len(got) != 0 {
		t.Errorf("in-slack range flagged: %v", got)
	}
	// Unknown names are skipped (coverage check owns those).
	unk := ctxWith(t, mkFeat("c.obs", "obs", mkVar("mystery", -1e9, 1e9)))
	if got := (PlausibleRanges{Slack: 0.5}).Run(unk); len(got) != 0 {
		t.Errorf("unknown name flagged: %v", got)
	}
}

func TestRunAggregatesAndReportCounts(t *testing.T) {
	f := mkFeat("stations/a.obs", "obs", mkVar("salinity", 0, 500), mkVar("zz_unknown", 0, 1))
	ctx := ctxWith(t, f)
	ctx.ExpectedPaths = []string{"ghost.obs"}
	report := Run(ctx, DefaultChecks()...)
	if len(report.ChecksRun) != 5 {
		t.Errorf("checks run = %v", report.ChecksRun)
	}
	if report.Errors() < 2 { // plausible-range + expected-dataset
		t.Errorf("errors = %d, findings = %v", report.Errors(), report.Findings)
	}
	if report.Warnings() < 1 { // coverage warning for zz_unknown
		t.Errorf("warnings = %d", report.Warnings())
	}
	if report.OK() {
		t.Error("report with errors is OK")
	}
	clean := ctxWith(t, mkFeat("stations/b.obs", "obs", mkVar("salinity", 0, 30)))
	if rep := Run(clean, DefaultChecks()...); !rep.OK() {
		t.Errorf("clean catalog not OK: %+v", rep.Findings)
	}
}

func TestSeverityString(t *testing.T) {
	if Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity strings wrong")
	}
}
