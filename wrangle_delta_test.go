package metamess

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metamess/internal/archive"
)

// publishedFingerprint renders a system's published catalog as
// comparable bytes: every feature JSON-marshaled in ID order with the
// ScannedAt bookkeeping zeroed (two systems never scan at the same
// instant; everything else must match to the byte).
func publishedFingerprint(t *testing.T, sys *System) string {
	t.Helper()
	var b strings.Builder
	for _, f := range sys.ctx.Published.Snapshot().All() {
		c := f.Clone()
		c.ScannedAt = time.Time{}
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

// rankingsFingerprint runs a battery of queries spanning every planner
// dimension and renders the full ranked responses as comparable bytes.
func rankingsFingerprint(t *testing.T, sys *System) string {
	t.Helper()
	queries := []Query{
		{Variables: []VariableTerm{{Name: "temperature"}}, K: 25},
		{Variables: []VariableTerm{{Name: "salinity", Min: f64p(5), Max: f64p(30)}}, K: 25},
		{Near: &LatLon{Lat: 45.5, Lon: -124.4}, K: 25},
		{
			Near: &LatLon{Lat: 46.2, Lon: -123.8},
			From: time.Date(2010, 4, 1, 0, 0, 0, 0, time.UTC),
			To:   time.Date(2010, 9, 1, 0, 0, 0, 0, time.UTC),
			Variables: []VariableTerm{
				{Name: "temperature", Min: f64p(5), Max: f64p(15)},
			},
			K: 25,
		},
	}
	texts := []string{
		"near 45.8,-124.0 in mid-2010 with temperature between 5 and 15",
		"with turbidity top 30",
	}
	var b strings.Builder
	for i, q := range queries {
		hits, err := sys.Search(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		data, err := json.Marshal(hits)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "q%d %s\n", i, data)
	}
	for i, q := range texts {
		hits, err := sys.SearchText(q)
		if err != nil {
			t.Fatalf("text query %d: %v", i, err)
		}
		data, err := json.Marshal(hits)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "t%d %s\n", i, data)
	}
	return b.String()
}

func f64p(v float64) *float64 { return &v }

// obsContent fabricates a clean OBS dataset body: canonical variable
// names, plausible values, deterministic per (tag, version).
func obsContent(tag string, version int) string {
	lat := 44.0 + float64(tag[len(tag)-1]%8)*0.3
	lon := -125.0 + float64(version%5)*0.2
	start := 1274000000 + int64(version)*86400
	var b strings.Builder
	fmt.Fprintf(&b, "#station: %s\n#lat: %.4f\n#lon: %.4f\n", tag, lat, lon)
	b.WriteString("#fields:\ttime\twater_temperature [degC]\tsalinity [psu]\n")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "%d\t%.2f\t%.2f\n", start+int64(i)*3600,
			10.0+float64((version+i)%7), 28.0+float64(i%4))
	}
	return b.String()
}

// appendDuplicateLastLine grows a generated OBS file by one repeated
// observation: the summary genuinely changes (row count) while every
// variable name stays put.
func appendDuplicateLastLine(t testing.TB, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	if strings.HasPrefix(last, "#") || last == "" {
		return // header-only file; leave it alone
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(last + "\n"); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaWrangleEquivalentToFromScratch is the write path's
// correctness anchor: interleave randomized archive mutations (adds,
// in-place edits, mtime-preserving edits, deletions) with delta
// re-wrangles, and require the published catalog and the search
// rankings to stay byte-identical to two oracles after every round —
//
//   - a persistent system running the same history with delta-scoped
//     processing disabled (Config.FullReprocess), which isolates the
//     delta machinery itself: same accumulated curation, every feature
//     reprocessed every run;
//   - a cold system wrangling the final archive state from scratch,
//     the poster's "re-run the whole process" baseline.
//
// CI runs this under -race, so the parallel scanner and the publish
// patching are exercised for data races at the same time.
func TestDeltaWrangleEquivalentToFromScratch(t *testing.T) {
	for _, seed := range []int64{3, 19} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			root := t.TempDir()
			m, err := archive.Generate(root, archive.DefaultGenConfig(24, seed))
			if err != nil {
				t.Fatal(err)
			}

			deltaSys, err := New(Config{ArchiveRoot: root})
			if err != nil {
				t.Fatal(err)
			}
			fullSys, err := New(Config{ArchiveRoot: root, FullReprocess: true})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := deltaSys.Wrangle(); err != nil {
				t.Fatal(err)
			}
			if _, err := fullSys.Wrangle(); err != nil {
				t.Fatal(err)
			}

			// Mutable working set: handcrafted files this test added.
			var added []string
			obsOriginals := []string{}
			for _, d := range m.Datasets {
				if string(d.Format) == "obs" {
					obsOriginals = append(obsOriginals, d.Path)
				}
			}
			nextTag := 0

			// The trap file: created with a pinned mtime, then edited
			// each round with same-size content and the mtime
			// restored. Size and mtime never move, so only the
			// content-hash tie-break in scanOne can see these edits —
			// if it ever stops arbitrating, the delta system diverges
			// from the oracles and this test fails.
			trapRel := filepath.Join("stations", "trap.obs")
			trapAbs := filepath.Join(root, trapRel)
			trapMtime := time.Now().Add(time.Hour).Truncate(time.Second)
			writeTrap := func(version int) {
				body := obsContent("trap", version)
				if err := os.WriteFile(trapAbs, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.Chtimes(trapAbs, trapMtime, trapMtime); err != nil {
					t.Fatal(err)
				}
			}
			writeTrap(0)

			for round := 0; round < 5; round++ {
				// Adds: clean handcrafted datasets.
				for k := 0; k < 1+rng.Intn(2); k++ {
					rel := filepath.Join("stations", fmt.Sprintf("prop%02d.obs", nextTag))
					nextTag++
					if err := os.WriteFile(filepath.Join(root, rel),
						[]byte(obsContent(fmt.Sprintf("p%d", nextTag), 0)), 0o644); err != nil {
						t.Fatal(err)
					}
					added = append(added, rel)
				}
				// In-place edits of generated files (name-preserving).
				for k := 0; k < rng.Intn(3); k++ {
					rel := obsOriginals[rng.Intn(len(obsOriginals))]
					appendDuplicateLastLine(t, filepath.Join(root, rel))
				}
				// The stat-invisible edit: same size, same mtime, new
				// content.
				if round > 0 {
					writeTrap(round)
				}
				// Deletions of handcrafted files.
				if len(added) > 1 && rng.Intn(2) == 0 {
					i := rng.Intn(len(added))
					if err := os.Remove(filepath.Join(root, added[i])); err != nil {
						t.Fatal(err)
					}
					added = append(added[:i], added[i+1:]...)
				}

				repDelta, err := deltaSys.Wrangle()
				if err != nil {
					t.Fatalf("round %d: delta wrangle: %v", round, err)
				}
				if _, err := fullSys.Wrangle(); err != nil {
					t.Fatalf("round %d: full wrangle: %v", round, err)
				}
				coldSys, err := New(Config{ArchiveRoot: root})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := coldSys.Wrangle(); err != nil {
					t.Fatalf("round %d: cold wrangle: %v", round, err)
				}

				wantCat, wantRank := publishedFingerprint(t, coldSys), rankingsFingerprint(t, coldSys)
				for name, sys := range map[string]*System{"delta": deltaSys, "full-ablation": fullSys} {
					if got := publishedFingerprint(t, sys); got != wantCat {
						t.Fatalf("round %d: %s published catalog diverged from cold wrangle\ndelta report: %+v\n%s",
							round, name, repDelta.Delta, firstDiff(got, wantCat))
					}
					if got := rankingsFingerprint(t, sys); got != wantRank {
						t.Fatalf("round %d: %s rankings diverged from cold wrangle\n%s",
							round, name, firstDiff(got, wantRank))
					}
				}
				// The delta run must actually have been incremental (the
				// archive churned, so some delta is expected, but never a
				// full reprocess after round 0).
				if repDelta.Delta.FullReprocess {
					t.Fatalf("round %d: delta system fell back to full reprocess: %+v", round, repDelta.Delta)
				}
			}

			// Coda: a no-op round — nothing mutated — must publish nothing
			// and keep the generation, while staying equivalent.
			gen := deltaSys.SnapshotGeneration()
			rep, err := deltaSys.Wrangle()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Delta.GenerationStable || deltaSys.SnapshotGeneration() != gen {
				t.Fatalf("no-op round moved the generation: %+v", rep.Delta)
			}
		})
	}
}

// firstDiff renders the first differing line of two multiline strings.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n got: %.400s\nwant: %.400s", i, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(g), len(w))
}
