// Command dnh is the "Data Near Here" search CLI: ranked search over a
// wrangled metadata catalog by location, time period, and variables.
//
// Usage:
//
//	dnh -archive /tmp/archive -lat 45.5 -lon -124.4 \
//	    -from 2010-05-01 -to 2010-08-01 -var "temperature:5:10" -k 5
//
// Variables take the form name[:min[:max]]. Pass -catalog to search a
// previously saved snapshot without re-wrangling the archive, or -data
// to search a dnhd data directory (checkpoint + publish journal): the
// catalog is recovered by replay, and if -archive is also given the
// CLI reconciles it against the archive with a delta-scoped wrangle
// before searching — the warm-restart path, priced at churn.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"metamess"
)

type varFlags []metamess.VariableTerm

func (v *varFlags) String() string { return fmt.Sprint(*v) }

func (v *varFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	term := metamess.VariableTerm{Name: parts[0]}
	if term.Name == "" {
		return fmt.Errorf("empty variable name")
	}
	if len(parts) > 1 && parts[1] != "" {
		f, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return fmt.Errorf("bad min %q", parts[1])
		}
		term.Min = &f
	}
	if len(parts) > 2 && parts[2] != "" {
		f, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return fmt.Errorf("bad max %q", parts[2])
		}
		term.Max = &f
	}
	*v = append(*v, term)
	return nil
}

func main() {
	archiveRoot := flag.String("archive", "", "archive root (wrangled before searching)")
	catalogPath := flag.String("catalog", "", "published catalog snapshot (skips wrangling)")
	dataDir := flag.String("data", "", "dnhd data directory (catalog recovered from checkpoint + journal)")
	lat := flag.Float64("lat", 0, "query latitude")
	lon := flag.Float64("lon", 0, "query longitude")
	hasLoc := flag.Bool("near", false, "use -lat/-lon as the query location")
	from := flag.String("from", "", "period start (YYYY-MM-DD)")
	to := flag.String("to", "", "period end (YYYY-MM-DD)")
	k := flag.Int("k", 10, "result count")
	workers := flag.Int("workers", 0, "parallel search workers (0 = all cores)")
	shards := flag.Int("shards", 0, "snapshot shards for publish patching and scatter-gather search (0 = all cores)")
	showSummary := flag.Bool("summary", false, "print the full dataset summary page per hit")
	textQuery := flag.String("q", "", `textual query, e.g. "near 45.5,-124.4 in mid-2010 with temperature between 5 and 10"`)
	var vars varFlags
	flag.Var(&vars, "var", "variable term name[:min[:max]] (repeatable)")
	flag.Parse()

	if *archiveRoot == "" && *catalogPath == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "dnh: one of -archive, -catalog, or -data is required")
		flag.Usage()
		os.Exit(2)
	}
	root := *archiveRoot
	if root == "" {
		// A throwaway root satisfies config validation; the snapshot or
		// data directory supplies the catalog.
		root = os.TempDir()
	}
	sys, err := metamess.New(metamess.Config{
		ArchiveRoot:    root,
		SearchWorkers:  *workers,
		SnapshotShards: *shards,
		DataDir:        *dataDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnh:", err)
		os.Exit(1)
	}
	defer sys.Close()
	switch {
	case *catalogPath != "":
		if err := sys.LoadCatalog(*catalogPath); err != nil {
			fmt.Fprintln(os.Stderr, "dnh:", err)
			os.Exit(1)
		}
	case *archiveRoot == "":
		// -data only: search the recovered catalog as-is.
	default:
		// Cold wrangle, or — with -data holding recovered state — a
		// delta-scoped reconciliation against the archive.
		if _, err := sys.Wrangle(); err != nil {
			fmt.Fprintln(os.Stderr, "dnh:", err)
			os.Exit(1)
		}
	}

	var hits []metamess.Hit
	if *textQuery != "" {
		hits, err = sys.SearchText(*textQuery)
	} else {
		q := metamess.Query{Variables: vars, K: *k}
		if *hasLoc {
			q.Near = &metamess.LatLon{Lat: *lat, Lon: *lon}
		}
		if *from != "" {
			t, perr := time.Parse("2006-01-02", *from)
			if perr != nil {
				fmt.Fprintln(os.Stderr, "dnh: bad -from:", perr)
				os.Exit(2)
			}
			q.From = t
		}
		if *to != "" {
			t, perr := time.Parse("2006-01-02", *to)
			if perr != nil {
				fmt.Fprintln(os.Stderr, "dnh: bad -to:", perr)
				os.Exit(2)
			}
			q.To = t
		}
		hits, err = sys.Search(q)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnh:", err)
		os.Exit(1)
	}
	if len(hits) == 0 {
		fmt.Println("no datasets found")
		return
	}
	for i, h := range hits {
		fmt.Printf("%2d. %.3f  %s\n", i+1, h.Score, h.Path)
		for _, m := range h.MatchedVariables {
			fmt.Printf("      matched %s\n", m)
		}
		if *showSummary {
			for _, line := range strings.Split(strings.TrimRight(h.Summary, "\n"), "\n") {
				fmt.Println("      " + line)
			}
		}
	}
}
