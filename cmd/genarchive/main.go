// Command genarchive writes a synthetic scientific-data archive with
// configurable semantic-diversity injection and a ground-truth manifest,
// standing in for the CMOP observatory archive the poster wrangles.
//
// Usage:
//
//	genarchive -out /tmp/archive -n 120 -seed 42 -mess 1.0
package main

import (
	"flag"
	"fmt"
	"os"

	"metamess/internal/archive"
)

func main() {
	out := flag.String("out", "", "output directory for the archive (required)")
	n := flag.Int("n", 60, "number of datasets to generate")
	seed := flag.Int64("seed", 42, "deterministic generation seed")
	mess := flag.Float64("mess", 1.0, "mess level multiplier (0 = clean names)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "genarchive: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := archive.DefaultGenConfig(*n, *seed)
	cfg.Mess = archive.DefaultMess().Scale(*mess)
	m, err := archive.Generate(*out, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genarchive:", err)
		os.Exit(1)
	}
	counts := m.CategoryCounts()
	fmt.Printf("generated %d datasets under %s (manifest.json written)\n", len(m.Datasets), *out)
	fmt.Println("injected semantic diversity (variable occurrences):")
	for cat, c := range counts {
		fmt.Printf("  %-16s %d\n", cat, c)
	}
}
