// Command wrangle runs the metadata wrangling process over an archive:
// scan, known transformations, transformation discovery, hierarchy
// generation, validation, publish. It prints the per-stage mess
// reduction and can persist the published catalog and the discovered
// rule file.
//
// Usage:
//
//	wrangle -archive /tmp/archive -catalog /tmp/catalog.snapshot -rules /tmp/rules.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"metamess"
	"metamess/internal/catalog"
	"metamess/internal/core"
	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/semdiv"
	"metamess/internal/vocab"
)

func main() {
	archiveRoot := flag.String("archive", "", "archive root directory (required)")
	dirs := flag.String("dirs", "", "comma-separated subdirectories to scan (default: all)")
	catalogOut := flag.String("catalog", "", "write the published catalog snapshot here")
	rulesOut := flag.String("rules", "", "write discovered transformation rules (JSON) here")
	strict := flag.Bool("strict", false, "fail (and skip publish) on validation errors")
	configPath := flag.String("config", "", "JSON process config (curator-authored chain)")
	flag.Parse()

	if *archiveRoot == "" {
		fmt.Fprintln(os.Stderr, "wrangle: -archive is required")
		flag.Usage()
		os.Exit(2)
	}
	if *configPath != "" {
		if err := runConfigured(*configPath, *archiveRoot, *dirs, *catalogOut, *rulesOut); err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
		return
	}
	cfg := metamess.Config{ArchiveRoot: *archiveRoot, StrictValidation: *strict}
	if *dirs != "" {
		cfg.Dirs = strings.Split(*dirs, ",")
	}
	sys, err := metamess.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrangle:", err)
		os.Exit(1)
	}
	rep, err := sys.Wrangle()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrangle:", err)
		for _, f := range sys.Validation() {
			fmt.Fprintln(os.Stderr, "  ", f)
		}
		os.Exit(1)
	}

	fmt.Printf("wrangled %d datasets in %v\n", rep.Datasets, rep.Duration.Round(1e6))
	fmt.Printf("coverage: %.3f -> %.3f (%d distinct names, %d unresolved)\n",
		rep.CoverageBefore, rep.CoverageAfter, rep.DistinctNames, rep.UnresolvedNames)
	fmt.Println("stages:")
	for _, s := range rep.Steps {
		fmt.Printf("  %-22s coverage=%.3f %v\n", s.Component, s.Coverage, s.Counters)
	}
	if rep.ValidationErrors+rep.ValidationWarnings > 0 {
		fmt.Printf("validation: %d errors, %d warnings\n", rep.ValidationErrors, rep.ValidationWarnings)
	}
	if queue := sys.CuratorQueue(); len(queue) > 0 {
		fmt.Println("curator queue:")
		for _, q := range queue {
			fmt.Println("  ", q)
		}
	}
	if *catalogOut != "" {
		if err := sys.SaveCatalog(*catalogOut); err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
		fmt.Println("catalog snapshot written to", *catalogOut)
	}
	if *rulesOut != "" {
		rules, err := sys.ExportRules()
		if err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*rulesOut, rules, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
		fmt.Println("discovered rules written to", *rulesOut)
	}
}

// runConfigured runs a curator-authored process config through the
// internal chain machinery directly.
func runConfigured(configPath, archiveRoot, dirs, catalogOut, rulesOut string) error {
	data, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	cfg, err := core.ParseProcessConfig(data)
	if err != nil {
		return err
	}
	p, err := cfg.Build()
	if err != nil {
		return err
	}
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		return err
	}
	scanCfg := scan.Config{Root: archiveRoot}
	if dirs != "" {
		scanCfg.Dirs = strings.Split(dirs, ",")
	}
	ctx := core.NewContext(k, scanCfg)
	report, err := p.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("process %q: %d datasets, coverage %.3f -> %.3f in %v\n",
		p.Name, ctx.Published.Len(),
		report.MessBefore.OccurrenceCoverage, report.MessAfter.OccurrenceCoverage,
		report.Duration.Round(1e6))
	for _, s := range report.Steps {
		fmt.Printf("  %-22s coverage=%.3f %v\n", s.Component, s.MessAfter.OccurrenceCoverage, s.Counters)
	}
	if catalogOut != "" {
		if err := catalog.Save(catalogOut, ctx.Published); err != nil {
			return err
		}
		fmt.Println("catalog snapshot written to", catalogOut)
	}
	if rulesOut != "" {
		rules, err := refine.ExportJSON(ctx.DiscoveredRules)
		if err != nil {
			return err
		}
		if err := os.WriteFile(rulesOut, rules, 0o644); err != nil {
			return err
		}
		fmt.Println("discovered rules written to", rulesOut)
	}
	return nil
}
