// Command dnhd is the "Data Near Here" daemon: it wrangles (or loads)
// a metadata catalog once, then serves ranked search over HTTP until
// stopped — the long-lived service the one-shot dnh CLI is not.
//
// Usage:
//
//	dnhd -archive /data/archive -addr :8080 -rewrangle 15m
//	dnhd -catalog /var/dnh/catalog.json -addr :8080
//
// Endpoints: POST /search, GET /search/text?q=..., GET /dataset/{path},
// GET /curator/queue, GET /healthz, GET /stats.
//
// Signals: SIGHUP triggers an immediate background re-wrangle — or, in
// -catalog mode, reloads the catalog file — while searches keep serving
// the old snapshot until the new one publishes; SIGINT and SIGTERM
// drain in-flight requests for up to -drain, then exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metamess"
	"metamess/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	archiveRoot := flag.String("archive", "", "archive root (wrangled before serving)")
	catalogPath := flag.String("catalog", "", "published catalog snapshot (skips wrangling)")
	rewrangle := flag.Duration("rewrangle", 0, "background re-wrangle interval (0 = SIGHUP only)")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "query cache entries (negative disables)")
	workers := flag.Int("workers", 0, "parallel search workers (0 = all cores)")
	shards := flag.Int("shards", 0, "snapshot shards for publish patching and scatter-gather search (0 = all cores)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.Parse()

	logger := log.New(os.Stderr, "dnhd: ", log.LstdFlags)
	if *archiveRoot == "" && *catalogPath == "" {
		fmt.Fprintln(os.Stderr, "dnhd: one of -archive or -catalog is required")
		flag.Usage()
		os.Exit(2)
	}
	root := *archiveRoot
	if root == "" {
		// A throwaway root satisfies config validation; the snapshot
		// supplies the catalog.
		root = os.TempDir()
	}
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root, SearchWorkers: *workers, SnapshotShards: *shards})
	if err != nil {
		logger.Fatal(err)
	}
	fromCatalog := *catalogPath != "" && *archiveRoot == ""
	if fromCatalog && *rewrangle > 0 {
		// There is no archive to wrangle — a scheduled run would scan the
		// throwaway root and publish an empty catalog over the loaded one.
		logger.Printf("-rewrangle ignored in -catalog mode (SIGHUP reloads the catalog instead)")
		*rewrangle = 0
	}
	if *catalogPath != "" {
		if err := sys.LoadCatalog(*catalogPath); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded catalog %s: %d datasets", *catalogPath, sys.DatasetCount())
	} else {
		start := time.Now()
		rep, err := sys.Wrangle()
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("wrangled %s: %d datasets, coverage %.3f, %v",
			root, rep.Datasets, rep.CoverageAfter, time.Since(start))
	}

	srv, err := server.New(server.Config{
		Sys:            sys,
		CacheSize:      *cacheSize,
		RewrangleEvery: *rewrangle,
		Logger:         logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("serving on %s (generation %d)", bound, sys.SnapshotGeneration())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if fromCatalog {
				// Reload the snapshot file; ReplaceAll publishes it
				// atomically and bumps the generation, invalidating the
				// query cache just like a wrangled publish.
				if err := sys.LoadCatalog(*catalogPath); err != nil {
					logger.Printf("SIGHUP: reload %s: %v", *catalogPath, err)
				} else {
					logger.Printf("SIGHUP: reloaded catalog %s: %d datasets, generation %d",
						*catalogPath, sys.DatasetCount(), sys.SnapshotGeneration())
				}
				continue
			}
			logger.Printf("SIGHUP: scheduling re-wrangle")
			srv.Rewrangle()
			continue
		}
		logger.Printf("%v: draining (up to %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		logger.Printf("bye")
		return
	}
}
