// Command dnhd is the "Data Near Here" daemon: it wrangles (or loads)
// a metadata catalog once, then serves ranked search over HTTP until
// stopped — the long-lived service the one-shot dnh CLI is not.
//
// Usage:
//
//	dnhd -archive /data/archive -addr :8080 -rewrangle 15m
//	dnhd -archive /data/archive -data /var/dnh -addr :8080
//	dnhd -catalog /var/dnh/catalog.json -addr :8080
//
// With -data the daemon is durable: every publish is journaled (fsync
// policy per -fsync), a background compactor folds the journal into a
// checkpoint, and a restart recovers the catalog and its generation
// from the data directory — serving traffic immediately, then
// reconciling against the archive with a delta-scoped wrangle that
// costs O(churn while down) instead of a cold re-wrangle.
//
// Endpoints: POST /search, GET /search/text?q=..., GET /dataset/{path},
// GET /curator/queue, GET /healthz (liveness), GET /readyz (readiness:
// 503 while shedding), GET /stats, GET /metrics (Prometheus text
// format), GET /debug/slowlog, GET /debug/wrangletrace.
//
// Overload: -max-inflight bounds concurrent searches; excess requests
// wait up to -queue-wait in a bounded FIFO (-queue-depth), then are
// shed with 429 + Retry-After. Identical cold queries collapse into one
// execution (followers get the leader's bytes, X-Dnhd-Cache:
// collapsed). For -stale-window after a publish, still-warm queries are
// answered from the previous generation's cache (X-Dnhd-Cache: stale,
// X-Dnhd-Generation reports the serving generation) while a background
// flight warms the new one. -request-timeout (tightened per request by
// an X-Deadline-Ms header) bounds each search; on expiry the response
// is a 200 with partial:true and X-Dnhd-Partial: 1, never cached.
//
// Observability: any search request carrying ?debug=trace or an
// "X-Trace: 1" header returns its span tree inline (and bypasses the
// query cache); -trace-sample N additionally traces 1 in N ordinary
// requests for the stage histograms. Queries slower than
// -slow-threshold land in the /debug/slowlog ring buffer and the
// structured log. Logs are structured key=value lines on stderr
// (log/slog).
//
// Signals: SIGHUP triggers an immediate background re-wrangle — or, in
// -catalog mode, reloads the catalog file — while searches keep serving
// the old snapshot until the new one publishes; SIGINT and SIGTERM
// drain in-flight requests for up to -drain, then exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // profiling handlers, served only when -pprof is set
	"os"
	"os/signal"
	"syscall"
	"time"

	"metamess"
	"metamess/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	archiveRoot := flag.String("archive", "", "archive root (wrangled before serving)")
	catalogPath := flag.String("catalog", "", "published catalog snapshot (skips wrangling)")
	rewrangle := flag.Duration("rewrangle", 0, "background re-wrangle interval (0 = SIGHUP only)")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "query cache entries (negative disables)")
	workers := flag.Int("workers", 0, "parallel search workers (0 = all cores)")
	shards := flag.Int("shards", 0, "snapshot shards for publish patching and scatter-gather search (0 = all cores)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	dataDir := flag.String("data", "", "data directory for the durable publish journal + checkpoint (enables warm restart)")
	fsync := flag.String("fsync", "always", "journal fsync policy: always, group, or none")
	groupWindow := flag.Duration("fsync-window", 0, "group-commit fsync window under -fsync group (0 = 50ms)")
	compactRatio := flag.Float64("compact-ratio", 0, "compact when journal exceeds ratio x checkpoint size (0 = 1.0)")
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N search requests for the stage histograms (0 = forced traces only)")
	slowThreshold := flag.Duration("slow-threshold", server.DefaultSlowThreshold, "slow-query log threshold (negative disables)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	maxInFlight := flag.Int("max-inflight", 0, "admission limit on concurrent searches (0 = unbounded)")
	queueDepth := flag.Int("queue-depth", 0, "admission wait-queue depth past the in-flight limit (0 = 2x the limit, negative = no queue)")
	queueWait := flag.Duration("queue-wait", 0, "longest a queued search waits for a slot before shedding (0 = 50ms)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-search deadline; exceeding it returns partial results (0 = none)")
	staleWindow := flag.Duration("stale-window", 5*time.Second, "serve previous-generation cache entries this long after a publish while revalidating (0 = disabled)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	if *archiveRoot == "" && *catalogPath == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "dnhd: one of -archive, -catalog, or -data is required")
		flag.Usage()
		os.Exit(2)
	}
	if *catalogPath != "" && *dataDir != "" {
		fmt.Fprintln(os.Stderr, "dnhd: -catalog and -data are mutually exclusive (the data directory is the catalog)")
		os.Exit(2)
	}
	root := *archiveRoot
	if root == "" {
		// A throwaway root satisfies config validation; the snapshot or
		// data directory supplies the catalog.
		root = os.TempDir()
	}
	sys, err := metamess.New(metamess.Config{
		ArchiveRoot:     root,
		SearchWorkers:   *workers,
		SnapshotShards:  *shards,
		DataDir:         *dataDir,
		SyncPolicy:      *fsync,
		SyncGroupWindow: *groupWindow,
		CompactRatio:    *compactRatio,
	})
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	fromCatalog := *catalogPath != "" && *archiveRoot == ""
	if *archiveRoot == "" && *rewrangle > 0 {
		// There is no archive to wrangle — a scheduled run would scan the
		// throwaway root and publish an empty catalog over the loaded one.
		logger.Warn("-rewrangle ignored without -archive (SIGHUP reloads the catalog instead)")
		*rewrangle = 0
	}
	switch {
	case *catalogPath != "":
		if err := sys.LoadCatalog(*catalogPath); err != nil {
			fatal(err)
		}
		logger.Info("loaded catalog "+*catalogPath, "datasets", sys.DatasetCount())
	case *archiveRoot == "":
		// -data only: serve the recovered catalog as-is.
		logger.Info("recovered "+*dataDir,
			"datasets", sys.DatasetCount(), "generation", sys.SnapshotGeneration())
	default:
		if sys.Durable() && sys.DatasetCount() > 0 {
			logger.Info("recovered "+*dataDir+"; reconciling against "+root,
				"datasets", sys.DatasetCount(), "generation", sys.SnapshotGeneration())
		}
		// Cold start: a full wrangle. Warm restart: the recovered catalog
		// seeds the scan, so this reconciliation run re-parses only the
		// files that changed while the daemon was down.
		start := time.Now()
		rep, err := sys.Wrangle()
		if err != nil {
			fatal(err)
		}
		mode := "wrangled"
		if rep.Delta.Unchanged > 0 && !rep.Delta.FullReprocess {
			mode = "reconciled"
		}
		logger.Info(mode+" "+root,
			"datasets", rep.Datasets,
			"coverage", rep.CoverageAfter,
			"added", rep.Delta.Added,
			"changed", rep.Delta.Changed,
			"removed", rep.Delta.Removed,
			"duration", time.Since(start))
		if _, err := sys.CompactIfNeeded(); err != nil {
			logger.Error("compact failed", "err", err)
		}
	}

	srv, err := server.New(server.Config{
		Sys:            sys,
		CacheSize:      *cacheSize,
		RewrangleEvery: *rewrangle,
		TraceSample:    *traceSample,
		SlowThreshold:  *slowThreshold,
		Logger:         logger,
		MaxInFlight:    *maxInFlight,
		QueueDepth:     *queueDepth,
		QueueWait:      *queueWait,
		RequestTimeout: *requestTimeout,
		StaleWindow:    *staleWindow,
	})
	if err != nil {
		fatal(err)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("serving on "+bound.String(), "generation", sys.SnapshotGeneration())

	if *pprofAddr != "" {
		// The pprof handlers register on http.DefaultServeMux at import;
		// serving that mux on a separate listener keeps profiling off the
		// public API address (bind it to localhost).
		go func() {
			logger.Info("pprof on " + *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof", "err", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if fromCatalog {
				// Reload the snapshot file; ReplaceAll publishes it
				// atomically and bumps the generation, invalidating the
				// query cache just like a wrangled publish.
				if err := sys.LoadCatalog(*catalogPath); err != nil {
					logger.Error("SIGHUP: reload "+*catalogPath, "err", err)
				} else {
					logger.Info("SIGHUP: reloaded catalog "+*catalogPath,
						"datasets", sys.DatasetCount(), "generation", sys.SnapshotGeneration())
				}
				continue
			}
			logger.Info("SIGHUP: scheduling re-wrangle")
			srv.Rewrangle()
			continue
		}
		logger.Info("draining", "signal", sig.String(), "timeout", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		// Shutdown has stopped the rewrangler, so no publish races this:
		// flush and close the journal before the process exits.
		if cerr := sys.Close(); cerr != nil {
			logger.Error("close journal", "err", cerr)
		}
		if err != nil {
			logger.Error("shutdown", "err", err)
			os.Exit(1)
		}
		logger.Info("bye")
		return
	}
}
