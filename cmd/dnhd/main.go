// Command dnhd is the "Data Near Here" daemon: it wrangles (or loads)
// a metadata catalog once, then serves ranked search over HTTP until
// stopped — the long-lived service the one-shot dnh CLI is not.
//
// Usage:
//
//	dnhd -archive /data/archive -addr :8080 -rewrangle 15m
//	dnhd -archive /data/archive -data /var/dnh -addr :8080
//	dnhd -catalog /var/dnh/catalog.json -addr :8080
//	dnhd -follow http://leader:8080 -data /var/replica -addr :8081
//
// With -data the daemon is durable: every publish is journaled (fsync
// policy per -fsync), a background compactor folds the journal into a
// checkpoint, and a restart recovers the catalog and its generation
// from the data directory — serving traffic immediately, then
// reconciling against the archive with a delta-scoped wrangle that
// costs O(churn while down) instead of a cold re-wrangle.
//
// With -follow the daemon is a read replica: instead of wrangling it
// tails the leader's publish journal (GET /journal/tail on the leader,
// long-polled), applies each generation-stamped delta, and serves
// searches with the full cache/admission/observability stack at the
// leader's generations. A follower that falls behind the leader's
// retained journals (e.g. down across a compaction) bootstraps from
// the leader's checkpoint automatically. With -data the follower
// journals what it applies, so a restart resumes from its last applied
// generation instead of re-downloading the world; a durable follower
// also serves /journal/tail itself, so replicas can chain. /readyz
// reports 503 once the follower is more than -max-lag generations
// behind; /stats and /metrics expose lag in generations and seconds.
// Clients needing read-your-writes send X-Min-Generation: N and either
// get an answer at generation >= N or a 412 naming the current one.
//
// Per-client rate limiting (-rate-limit, -rate-burst) refuses clients
// past their token budget with 429 + an accurate Retry-After before
// they can occupy an admission queue position; clients are keyed by
// X-Client-Id when present, else client IP.
//
// Push ingest: POST /publish accepts a batched feature delta from a
// live producer — validated, journaled, and replicated exactly like a
// wrangled publish, with zero filesystem stat calls. -max-publish caps
// the body size (negative disables the endpoint); followers never mount
// it — writes go to the leader and arrive here through the tail.
//
// Endpoints: POST /search, POST /publish, GET /search/text?q=...,
// GET /dataset/{path},
// GET /curator/queue, GET /healthz (liveness), GET /readyz (readiness:
// 503 while shedding), GET /stats, GET /metrics (Prometheus text
// format), GET /debug/slowlog, GET /debug/wrangletrace.
//
// Overload: -max-inflight bounds concurrent searches; excess requests
// wait up to -queue-wait in a bounded FIFO (-queue-depth), then are
// shed with 429 + Retry-After. Identical cold queries collapse into one
// execution (followers get the leader's bytes, X-Dnhd-Cache:
// collapsed). For -stale-window after a publish, still-warm queries are
// answered from the previous generation's cache (X-Dnhd-Cache: stale,
// X-Dnhd-Generation reports the serving generation) while a background
// flight warms the new one. -request-timeout (tightened per request by
// an X-Deadline-Ms header) bounds each search; on expiry the response
// is a 200 with partial:true and X-Dnhd-Partial: 1, never cached.
//
// Observability: any search request carrying ?debug=trace or an
// "X-Trace: 1" header returns its span tree inline (and bypasses the
// query cache); -trace-sample N additionally traces 1 in N ordinary
// requests for the stage histograms. Queries slower than
// -slow-threshold land in the /debug/slowlog ring buffer and the
// structured log. Logs are structured key=value lines on stderr
// (log/slog).
//
// Signals: SIGHUP triggers an immediate background re-wrangle — or, in
// -catalog mode, reloads the catalog file; in -follow mode, an
// immediate tail retry — while searches keep serving the old snapshot
// until the new one publishes; SIGINT and SIGTERM drain in-flight
// requests for up to -drain, then exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // profiling handlers, served only when -pprof is set
	"os"
	"os/signal"
	"syscall"
	"time"

	"metamess"
	"metamess/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	archiveRoot := flag.String("archive", "", "archive root (wrangled before serving)")
	catalogPath := flag.String("catalog", "", "published catalog snapshot (skips wrangling)")
	rewrangle := flag.Duration("rewrangle", 0, "background re-wrangle interval (0 = SIGHUP only)")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "query cache entries (negative disables)")
	workers := flag.Int("workers", 0, "parallel search workers (0 = all cores)")
	shards := flag.Int("shards", 0, "snapshot shards for publish patching and scatter-gather search (0 = all cores)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	dataDir := flag.String("data", "", "data directory for the durable publish journal + checkpoint (enables warm restart)")
	fsync := flag.String("fsync", "always", "journal fsync policy: always, group, or none")
	groupWindow := flag.Duration("fsync-window", 0, "group-commit fsync window under -fsync group (0 = 50ms)")
	compactRatio := flag.Float64("compact-ratio", 0, "compact when journal exceeds ratio x checkpoint size (0 = 1.0)")
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N search requests for the stage histograms (0 = forced traces only)")
	slowThreshold := flag.Duration("slow-threshold", server.DefaultSlowThreshold, "slow-query log threshold (negative disables)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	maxInFlight := flag.Int("max-inflight", 0, "admission limit on concurrent searches (0 = unbounded)")
	queueDepth := flag.Int("queue-depth", 0, "admission wait-queue depth past the in-flight limit (0 = 2x the limit, negative = no queue)")
	queueWait := flag.Duration("queue-wait", 0, "longest a queued search waits for a slot before shedding (0 = 50ms)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-search deadline; exceeding it returns partial results (0 = none)")
	staleWindow := flag.Duration("stale-window", 5*time.Second, "serve previous-generation cache entries this long after a publish while revalidating (0 = disabled)")
	follow := flag.String("follow", "", "run as a read replica tailing this leader URL (e.g. http://leader:8080)")
	maxLag := flag.Uint64("max-lag", 0, "follower /readyz reports 503 past this many generations behind the leader (0 = 16)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client search budget in requests/second (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "per-client token-bucket burst (0 = 2x -rate-limit)")
	maxPublish := flag.Int64("max-publish", 0, "POST /publish body cap in bytes (0 = 8 MiB, negative disables the endpoint)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	if *archiveRoot == "" && *catalogPath == "" && *dataDir == "" && *follow == "" {
		fmt.Fprintln(os.Stderr, "dnhd: one of -archive, -catalog, -data, or -follow is required")
		flag.Usage()
		os.Exit(2)
	}
	if *catalogPath != "" && *dataDir != "" {
		fmt.Fprintln(os.Stderr, "dnhd: -catalog and -data are mutually exclusive (the data directory is the catalog)")
		os.Exit(2)
	}
	if *follow != "" && (*archiveRoot != "" || *catalogPath != "") {
		fmt.Fprintln(os.Stderr, "dnhd: -follow is mutually exclusive with -archive and -catalog (a replica's catalog comes from its leader)")
		os.Exit(2)
	}
	root := *archiveRoot
	if root == "" {
		// A throwaway root satisfies config validation; the snapshot or
		// data directory supplies the catalog.
		root = os.TempDir()
	}
	sys, err := metamess.New(metamess.Config{
		ArchiveRoot:     root,
		SearchWorkers:   *workers,
		SnapshotShards:  *shards,
		DataDir:         *dataDir,
		SyncPolicy:      *fsync,
		SyncGroupWindow: *groupWindow,
		CompactRatio:    *compactRatio,
	})
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	fromCatalog := *catalogPath != "" && *archiveRoot == ""
	if *archiveRoot == "" && *rewrangle > 0 {
		// There is no archive to wrangle — a scheduled run would scan the
		// throwaway root and publish an empty catalog over the loaded one.
		logger.Warn("-rewrangle ignored without -archive (SIGHUP reloads the catalog instead)")
		*rewrangle = 0
	}
	var rep *server.Replicator
	switch {
	case *follow != "":
		rep, err = server.NewReplicator(server.ReplicaConfig{
			Leader: *follow,
			Sys:    sys,
			MaxLag: *maxLag,
			Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		if sys.Durable() && sys.DatasetCount() > 0 {
			logger.Info("recovered "+*dataDir+"; resuming tail of "+*follow,
				"datasets", sys.DatasetCount(), "generation", sys.SnapshotGeneration())
		} else {
			logger.Info("following " + *follow)
		}
	case *catalogPath != "":
		if err := sys.LoadCatalog(*catalogPath); err != nil {
			fatal(err)
		}
		logger.Info("loaded catalog "+*catalogPath, "datasets", sys.DatasetCount())
	case *archiveRoot == "":
		// -data only: serve the recovered catalog as-is.
		logger.Info("recovered "+*dataDir,
			"datasets", sys.DatasetCount(), "generation", sys.SnapshotGeneration())
	default:
		if sys.Durable() && sys.DatasetCount() > 0 {
			logger.Info("recovered "+*dataDir+"; reconciling against "+root,
				"datasets", sys.DatasetCount(), "generation", sys.SnapshotGeneration())
		}
		// Cold start: a full wrangle. Warm restart: the recovered catalog
		// seeds the scan, so this reconciliation run re-parses only the
		// files that changed while the daemon was down.
		start := time.Now()
		rep, err := sys.Wrangle()
		if err != nil {
			fatal(err)
		}
		mode := "wrangled"
		if rep.Delta.Unchanged > 0 && !rep.Delta.FullReprocess {
			mode = "reconciled"
		}
		logger.Info(mode+" "+root,
			"datasets", rep.Datasets,
			"coverage", rep.CoverageAfter,
			"added", rep.Delta.Added,
			"changed", rep.Delta.Changed,
			"removed", rep.Delta.Removed,
			"duration", time.Since(start))
		if _, err := sys.CompactIfNeeded(); err != nil {
			logger.Error("compact failed", "err", err)
		}
	}

	pubBytes := *maxPublish
	if rep != nil && pubBytes >= 0 {
		// A follower's catalog mirrors its leader; a direct publish here
		// would fork the replica. Writes go to the leader and arrive
		// through the journal tail.
		if pubBytes > 0 {
			logger.Warn("-max-publish ignored on a follower (publish to the leader)")
		}
		pubBytes = -1
	}
	srv, err := server.New(server.Config{
		Sys:             sys,
		CacheSize:       *cacheSize,
		RewrangleEvery:  *rewrangle,
		TraceSample:     *traceSample,
		SlowThreshold:   *slowThreshold,
		Logger:          logger,
		MaxInFlight:     *maxInFlight,
		QueueDepth:      *queueDepth,
		QueueWait:       *queueWait,
		RequestTimeout:  *requestTimeout,
		StaleWindow:     *staleWindow,
		RateLimit:       *rateLimit,
		RateBurst:       *rateBurst,
		MaxPublishBytes: pubBytes,
		Replica:         rep,
	})
	if err != nil {
		fatal(err)
	}
	if rep != nil {
		rep.Start()
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("serving on "+bound.String(), "generation", sys.SnapshotGeneration())

	if *pprofAddr != "" {
		// The pprof handlers register on http.DefaultServeMux at import;
		// serving that mux on a separate listener keeps profiling off the
		// public API address (bind it to localhost).
		go func() {
			logger.Info("pprof on " + *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof", "err", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if rep != nil {
				// A healthy follower is always tailing; the kick cuts an
				// error backoff short after, say, a leader restart.
				logger.Info("SIGHUP: kicking replication tail")
				rep.Kick()
				continue
			}
			if fromCatalog {
				// Reload the snapshot file; ReplaceAll publishes it
				// atomically and bumps the generation, invalidating the
				// query cache just like a wrangled publish.
				if err := sys.LoadCatalog(*catalogPath); err != nil {
					logger.Error("SIGHUP: reload "+*catalogPath, "err", err)
				} else {
					logger.Info("SIGHUP: reloaded catalog "+*catalogPath,
						"datasets", sys.DatasetCount(), "generation", sys.SnapshotGeneration())
				}
				continue
			}
			logger.Info("SIGHUP: scheduling re-wrangle")
			srv.Rewrangle()
			continue
		}
		logger.Info("draining", "signal", sig.String(), "timeout", *drain)
		if rep != nil {
			// Stop applying before draining: no replicated publish races
			// the journal close below.
			rep.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		// Shutdown has stopped the rewrangler, so no publish races this:
		// flush and close the journal before the process exits.
		if cerr := sys.Close(); cerr != nil {
			logger.Error("close journal", "err", cerr)
		}
		if err != nil {
			logger.Error("shutdown", "err", err)
			os.Exit(1)
		}
		logger.Info("bye")
		return
	}
}
