// Command dnhload replays a generated query workload against a dnhd
// server, concurrently, and reports serving throughput and latency
// percentiles — the numbers in BENCH_serve.json.
//
// Two modes:
//
//	dnhload -out BENCH_serve.json                 # self-hosted benchmark:
//	    generates an archive, wrangles it, starts an in-process server,
//	    and replays cold (distinct queries) and hot (one repeated query)
//	    phases against it — then the overload battery: an admission-
//	    limited server driven open-loop at -overload-factor times its
//	    measured healthy throughput (zipfian keys, burst arrivals), a
//	    post-publish replay proving stale-while-revalidate removes the
//	    cold-miss cliff, a deadline probe proving partial results are
//	    never cached, and a hostile mix from the fuzz corpora proving
//	    overload and abuse never produce a 5xx.
//
//	dnhload -addr http://127.0.0.1:8080 -manifest /tmp/archive/manifest.json
//	    replays against an already-running server, deriving queries from
//	    the archive's ground-truth manifest (e.g. the CI smoke test, with
//	    a SIGHUP re-wrangle racing the replay). Only the cold/hot phases
//	    run — the overload battery needs to own the server's admission
//	    configuration.
//
// After the cold phase the p99-rank request is re-issued once with a
// forced trace (X-Trace: 1) and its span tree lands in the report as an
// exemplar — a worst-case stage breakdown next to the percentile it
// explains. -slow-threshold sets the self-hosted server's slow-query
// log threshold (recorded in the report either way).
//
// The overload scenario asserts its own acceptance bars in-process —
// sheds observed with zero 5xx, collapsed flights observed, admitted
// p99 within 2x of healthy p99, shed latency sub-millisecond at the
// median — and dnhload exits non-zero when any fails, so the report's
// verdict booleans are load-bearing, not decorative.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"metamess"
	"metamess/internal/archive"
	"metamess/internal/server"
	"metamess/internal/workload"
)

// searchRequests converts judged workload queries into POST /search
// wire requests against base.
func searchRequests(base string, queries []workload.Judged) ([]workload.HTTPRequest, error) {
	out := make([]workload.HTTPRequest, len(queries))
	for i, j := range queries {
		body, err := json.Marshal(server.RequestFromQuery(j.Query))
		if err != nil {
			return nil, err
		}
		out[i] = workload.HTTPRequest{Method: http.MethodPost, URL: base + "/search", Body: body}
	}
	return out, nil
}

// traceExemplar is one forced-trace request embedded in the report: the
// cold-phase p99-rank query replayed with X-Trace: 1.
type traceExemplar struct {
	// ColdLatencyMs is the latency the request observed during the cold
	// phase (what ranked it at the p99); TracedLatencyMs is the re-issue.
	ColdLatencyMs   float64         `json:"coldLatencyMs"`
	TracedLatencyMs float64         `json:"tracedLatencyMs"`
	Trace           json.RawMessage `json:"trace"`
}

// overloadScenario is the saturation battery's row in the report: an
// admission-limited server driven open-loop past its capacity, with the
// acceptance bars evaluated in-process.
type overloadScenario struct {
	MaxInFlight  int     `json:"maxInFlight"`
	QueueDepth   int     `json:"queueDepth"`
	QueueWaitMs  float64 `json:"queueWaitMs"`
	Factor       float64 `json:"factor"`
	HealthyQPS   float64 `json:"healthyQPS"`
	HealthyP99Ms float64 `json:"healthyP99Ms"`
	// Healthy is the closed-loop run (concurrency = MaxInFlight) that
	// measured capacity; Stats is the open-loop overload run itself.
	Healthy workload.LoadStats `json:"healthy"`
	Stats   workload.LoadStats `json:"stats"`
	// P99UnderOverloadMs is the admitted-request (2xx) p99 while the
	// offered load exceeded capacity by Factor.
	P99UnderOverloadMs float64 `json:"p99UnderOverloadMs"`
	ShedRate           float64 `json:"shedRate"`
	CollapsedFlights   int     `json:"collapsedFlights"`
	// Server is the overload server's own admission accounting (from
	// /stats) — the server-side view matching the client-side Stats.
	Server server.OverloadStats `json:"server"`
	// Verdicts — all must hold or dnhload exits non-zero.
	ShedObserved        bool `json:"shedObserved"`
	CollapseObserved    bool `json:"collapseObserved"`
	ZeroServerErrors    bool `json:"zeroServerErrors"`
	AdmittedP99Within2x bool `json:"admittedP99Within2x"`
	ShedsFast           bool `json:"shedsFast"`
}

// postPublishScenario measures the cold-miss cliff across a publish:
// the hot set is replayed immediately after a generation bump, with
// stale-while-revalidate serving the previous generation's bytes while
// background flights warm the new one.
type postPublishScenario struct {
	Stats       workload.LoadStats `json:"stats"`
	StaleServed int                `json:"staleServed"`
	P99Ms       float64            `json:"p99Ms"`
	// ColdMissP99Ms is the cold phase's p99 — what the same replay would
	// have cost without stale serving (every request a cold miss).
	ColdMissP99Ms   float64 `json:"coldMissP99Ms"`
	CliffEliminated bool    `json:"cliffEliminated"`
}

// deadlineScenario proves the partial-results contract: expired budgets
// answer 200 with partial:true and are never cached.
type deadlineScenario struct {
	Stats       workload.LoadStats `json:"stats"`
	AllPartial  bool               `json:"allPartial"`
	NeverCached bool               `json:"neverCached"`
}

// replicationScenario is the leader/follower row: a durable leader and
// a tailing read replica, with live publishes racing the follower's
// replay. It reports the follower's serving throughput, the per-publish
// catch-up lag, and the byte-identity verdict.
type replicationScenario struct {
	Publishes int `json:"publishes"`
	// Follower is the query replay against the replica while it tails.
	Follower      workload.LoadStats `json:"follower"`
	FollowerQPS   float64            `json:"followerQPS"`
	FollowerP99Ms float64            `json:"followerP99Ms"`
	// LagP99Ms / LagMaxMs summarize per-publish catch-up: the wall time
	// from a publish landing on the leader to the follower serving it.
	LagP99Ms       float64 `json:"lagP99Ms"`
	LagMaxMs       float64 `json:"lagMaxMs"`
	Resyncs        uint64  `json:"resyncs"`
	AppliedRecords uint64  `json:"appliedRecords"`
	// Verdicts — both must hold or dnhload exits non-zero.
	ByteIdentical bool `json:"byteIdentical"`
	ZeroErrors    bool `json:"zeroErrors"`
}

// pushIngestScenario is the push-storm row: a publish stream
// interleaved into a query replay on one server. Producers land
// feature-delta batches through POST /publish while readers search;
// every batch must be accepted, every accepted batch must advance the
// generation (so generation-keyed cached rankings can never go stale),
// and the mixed stream must finish with zero errors.
type pushIngestScenario struct {
	Publishes int `json:"publishes"`
	BatchSize int `json:"batchSize"`
	Queries   int `json:"queries"`
	// Stats is the interleaved replay (queries + publishes in one
	// stream).
	Stats workload.LoadStats `json:"stats"`
	QPS   float64            `json:"qps"`
	P99Ms float64            `json:"p99Ms"`
	// GenerationBefore/After bracket the replay; Ingest is the server's
	// own accounting.
	GenerationBefore uint64             `json:"generationBefore"`
	GenerationAfter  uint64             `json:"generationAfter"`
	Ingest           server.IngestStats `json:"ingest"`
	// Verdicts — all must hold or dnhload exits non-zero.
	AllAccepted         bool `json:"allAccepted"`
	GenerationAdvanced  bool `json:"generationAdvanced"`
	ZeroErrors          bool `json:"zeroErrors"`
	SearchableAfterPush bool `json:"searchableAfterPush"`
}

// runPushIngest builds a dedicated rig (its own archive and system, so
// the pushed paths don't leak into other phases), interleaves a publish
// stream into a query replay, and verifies the push-fed deltas are
// accepted, generation-bumping, and immediately searchable.
func runPushIngest(ctx context.Context, logger *slog.Logger, host *selfHosted, seed int64) (*pushIngestScenario, error) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	root, err := os.MkdirTemp("", "dnhload-push-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	m, err := archive.Generate(root, archive.DefaultGenConfig(200, seed+61))
	if err != nil {
		return nil, err
	}
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if _, err := sys.Wrangle(); err != nil {
		return nil, err
	}
	base, stop, err := host.startServer(server.Config{Sys: sys, Logger: quiet, SlowThreshold: -1})
	if err != nil {
		return nil, err
	}
	defer stop()

	const (
		publishes = 20
		batchSize = 25
		queryN    = 200
	)
	qs, err := workload.Queries(m, queryN, seed+67, workload.DefaultRelevance(), false)
	if err != nil {
		return nil, err
	}
	queryReqs, err := searchRequests(base, qs)
	if err != nil {
		return nil, err
	}
	pubReqs, err := workload.PublishRequests(base, publishes, batchSize, seed+71)
	if err != nil {
		return nil, err
	}
	stream := workload.InterleaveEvery(queryReqs, pubReqs, queryN/publishes)

	sc := &pushIngestScenario{
		Publishes:        publishes,
		BatchSize:        batchSize,
		Queries:          queryN,
		GenerationBefore: sys.SnapshotGeneration(),
	}
	logger.Info("push-ingest phase", "requests", len(stream),
		"publishes", publishes, "batch", batchSize)
	stats, err := workload.Replay(ctx, stream, workload.LoadOptions{Concurrency: 8})
	if err != nil {
		return nil, err
	}
	sc.Stats = stats
	sc.QPS = stats.QPS
	sc.P99Ms = stats.P99Ms
	sc.GenerationAfter = sys.SnapshotGeneration()
	srvStats, err := fetchStats(ctx, base)
	if err != nil {
		return nil, err
	}
	sc.Ingest = srvStats.Ingest

	// A post-storm probe: a pushed dataset must rank, at the final
	// generation — the generation-keyed cache cannot serve a ranking
	// that predates the publishes.
	probeBody, err := json.Marshal(server.SearchRequest{
		Near:      &server.LatLon{Lat: 46, Lon: -124},
		Variables: []server.Variable{{Name: "water_temperature"}},
		K:         100,
	})
	if err != nil {
		return nil, err
	}
	body, gen, err := fetchBody(ctx, workload.HTTPRequest{Method: http.MethodPost, URL: base + "/search", Body: probeBody})
	if err != nil {
		return nil, err
	}
	sc.SearchableAfterPush = gen == fmt.Sprint(sc.GenerationAfter) && bytes.Contains(body, []byte(`"push/`))

	sc.AllAccepted = sc.Ingest.Publishes == publishes && sc.Ingest.Rejected == 0 &&
		sc.Ingest.Features == uint64(publishes*batchSize)
	sc.GenerationAdvanced = sc.GenerationAfter >= sc.GenerationBefore+publishes
	sc.ZeroErrors = stats.Errors == 0 && stats.Status.Server5xx == 0
	logger.Info("push-ingest: done",
		"qps", sc.QPS, "p99Ms", sc.P99Ms,
		"generation", sc.GenerationAfter, "published", sc.Ingest.Features,
		"allAccepted", sc.AllAccepted, "searchable", sc.SearchableAfterPush)
	return sc, nil
}

// hostileScenario replays fuzz-corpus garbage; rejections (4xx) are
// expected, server errors are not.
type hostileScenario struct {
	Corpus           int                `json:"corpus"`
	Stats            workload.LoadStats `json:"stats"`
	ZeroServerErrors bool               `json:"zeroServerErrors"`
}

// benchReport is the BENCH_serve.json schema.
type benchReport struct {
	GeneratedAt string `json:"generatedAt"`
	Mode        string `json:"mode"`
	Datasets    int    `json:"datasets"`
	Concurrency int    `json:"concurrency"`
	// Cold replays distinct queries (mostly cache misses); Hot replays
	// one query (first request misses, the rest hit the snapshot-keyed
	// cache).
	Cold workload.LoadStats `json:"cold"`
	Hot  workload.LoadStats `json:"hot"`
	// HotSpeedupP50 is Cold.P50Ms / Hot.P50Ms — how much faster the
	// cached hot query is at the median.
	HotSpeedupP50 float64 `json:"hotSpeedupP50"`
	// SlowThresholdMs is the server's slow-query log threshold during
	// the run; P99Exemplar is the cold p99 request's forced span tree.
	SlowThresholdMs float64        `json:"slowThresholdMs,omitempty"`
	P99Exemplar     *traceExemplar `json:"p99Exemplar,omitempty"`
	// The overload battery (self-hosted mode only).
	Overload    *overloadScenario    `json:"overload,omitempty"`
	PostPublish *postPublishScenario `json:"postPublish,omitempty"`
	Deadline    *deadlineScenario    `json:"deadline,omitempty"`
	Hostile     *hostileScenario     `json:"hostile,omitempty"`
	Replication *replicationScenario `json:"replication,omitempty"`
	PushIngest  *pushIngestScenario  `json:"pushIngest,omitempty"`
}

func main() {
	// On a single-core runner, GOMAXPROCS=1 serializes the whole rig:
	// each sub-quantum request runs to completion before the scheduler
	// lets the next connection reach the handler, so concurrent pressure
	// never forms at the admission gate no matter the offered load.
	// Multiple Ps hand the interleaving to the kernel's thread scheduler,
	// which is how a real multi-core deployment behaves.
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	addr := flag.String("addr", "", "base URL of a running dnhd (empty = self-hosted benchmark)")
	manifestPath := flag.String("manifest", "", "archive manifest.json for query derivation (required with -addr)")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	n := flag.Int("n", 400, "requests per phase")
	conc := flag.Int("c", 8, "concurrent requests")
	datasets := flag.Int("datasets", 300, "archive size in self-hosted mode")
	seed := flag.Int64("seed", 42, "workload/archive seed")
	slowThreshold := flag.Duration("slow-threshold", server.DefaultSlowThreshold,
		"self-hosted server's slow-query log threshold (negative disables)")
	maxInFlight := flag.Int("max-inflight", 4, "admission limit for the overload scenario's server")
	factor := flag.Float64("overload-factor", 4, "offered load as a multiple of measured healthy throughput")
	staleWindow := flag.Duration("stale-window", 10*time.Second, "self-hosted server's stale-while-revalidate window")
	hostileCorpus := flag.String("hostile-corpus",
		"internal/expr/testdata/fuzz/FuzzExprParse,internal/scan/testdata/fuzz/FuzzScanParsers",
		"comma-separated go-fuzz corpus dirs for the hostile mix (missing dirs skipped)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	rep := benchReport{Concurrency: *conc}
	if *slowThreshold > 0 {
		rep.SlowThresholdMs = float64(*slowThreshold) / float64(time.Millisecond)
	}

	var m *archive.Manifest
	var host *selfHosted
	base := *addr
	if base == "" {
		rep.Mode = "selfhosted"
		var err error
		host, err = selfHost(logger, *datasets, *seed, *slowThreshold, *staleWindow)
		if err != nil {
			fatal(err)
		}
		defer host.shutdown()
		base, m = host.base, host.manifest
	} else {
		rep.Mode = "external"
		if *manifestPath == "" {
			fatal(fmt.Errorf("-manifest is required with -addr"))
		}
		var err error
		m, err = archive.ReadManifest(*manifestPath)
		if err != nil {
			fatal(err)
		}
	}
	rep.Datasets = len(m.Datasets)

	queries, err := workload.Queries(m, *n, *seed, workload.DefaultRelevance(), false)
	if err != nil {
		fatal(err)
	}
	coldReqs, err := searchRequests(base, queries)
	if err != nil {
		fatal(err)
	}
	hotReqs := make([]workload.HTTPRequest, *n)
	for i := range hotReqs {
		hotReqs[i] = coldReqs[0]
	}

	ctx := context.Background()
	opts := workload.LoadOptions{Concurrency: *conc}
	logger.Info("cold phase", "queries", len(coldReqs), "concurrency", *conc)
	if rep.Cold, err = workload.Replay(ctx, coldReqs, opts); err != nil {
		fatal(err)
	}
	if ex, err := p99Exemplar(ctx, coldReqs, rep.Cold.Latencies); err != nil {
		logger.Warn("p99 exemplar trace failed", "err", err)
	} else {
		rep.P99Exemplar = ex
	}
	logger.Info("hot phase", "requests", len(hotReqs), "concurrency", *conc)
	if rep.Hot, err = workload.Replay(ctx, hotReqs, opts); err != nil {
		fatal(err)
	}
	if rep.Hot.P50Ms > 0 {
		rep.HotSpeedupP50 = rep.Cold.P50Ms / rep.Hot.P50Ms
	}

	failed := rep.Cold.Errors+rep.Hot.Errors > 0
	if host != nil {
		if rep.Overload, err = runOverload(ctx, logger, host, *seed, *maxInFlight, *factor); err != nil {
			fatal(err)
		}
		if rep.PostPublish, err = runPostPublish(ctx, logger, host, coldReqs, rep.Cold.P99Ms, *seed); err != nil {
			fatal(err)
		}
		if rep.Deadline, err = runDeadline(ctx, logger, host, m, *seed); err != nil {
			fatal(err)
		}
		if rep.Hostile, err = runHostile(ctx, logger, host.base, *hostileCorpus, *seed); err != nil {
			logger.Warn("hostile mix skipped", "err", err)
		}
		if rep.Replication, err = runReplication(ctx, logger, host, *seed); err != nil {
			fatal(err)
		}
		if rep.PushIngest, err = runPushIngest(ctx, logger, host, *seed); err != nil {
			fatal(err)
		}
		o := rep.Overload
		if !o.ShedObserved || !o.CollapseObserved || !o.ZeroServerErrors || !o.AdmittedP99Within2x || !o.ShedsFast {
			logger.Error("overload verdicts failed",
				"shedObserved", o.ShedObserved, "collapseObserved", o.CollapseObserved,
				"zeroServerErrors", o.ZeroServerErrors,
				"admittedP99Within2x", o.AdmittedP99Within2x, "shedsFast", o.ShedsFast)
			failed = true
		}
		if !rep.PostPublish.CliffEliminated {
			logger.Error("post-publish cliff not eliminated",
				"p99Ms", rep.PostPublish.P99Ms, "coldMissP99Ms", rep.PostPublish.ColdMissP99Ms,
				"staleServed", rep.PostPublish.StaleServed)
			failed = true
		}
		if !rep.Deadline.AllPartial || !rep.Deadline.NeverCached {
			logger.Error("deadline/partial contract failed",
				"allPartial", rep.Deadline.AllPartial, "neverCached", rep.Deadline.NeverCached)
			failed = true
		}
		if rep.Hostile != nil && !rep.Hostile.ZeroServerErrors {
			logger.Error("hostile mix produced server errors")
			failed = true
		}
		if !rep.Replication.ByteIdentical || !rep.Replication.ZeroErrors {
			logger.Error("replication verdicts failed",
				"byteIdentical", rep.Replication.ByteIdentical,
				"zeroErrors", rep.Replication.ZeroErrors,
				"resyncs", rep.Replication.Resyncs)
			failed = true
		}
		p := rep.PushIngest
		if !p.AllAccepted || !p.GenerationAdvanced || !p.ZeroErrors || !p.SearchableAfterPush {
			logger.Error("push-ingest verdicts failed",
				"allAccepted", p.AllAccepted, "generationAdvanced", p.GenerationAdvanced,
				"zeroErrors", p.ZeroErrors, "searchableAfterPush", p.SearchableAfterPush,
				"ingest", p.Ingest)
			failed = true
		}
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	body = append(body, '\n')
	if *out == "" {
		os.Stdout.Write(body)
	} else if err := os.WriteFile(*out, body, 0o644); err != nil {
		fatal(err)
	}
	logger.Info("done",
		"coldQPS", rep.Cold.QPS, "coldP50Ms", rep.Cold.P50Ms, "coldP99Ms", rep.Cold.P99Ms, "coldErrors", rep.Cold.Errors,
		"hotQPS", rep.Hot.QPS, "hotP50Ms", rep.Hot.P50Ms, "hotP99Ms", rep.Hot.P99Ms, "hotErrors", rep.Hot.Errors,
		"hotP50Speedup", rep.HotSpeedupP50)
	if failed {
		os.Exit(1)
	}
}

// runOverload builds a dedicated rig for the saturation battery: its
// own, larger archive (so a cold miss costs real executor time — on a
// small shared machine, sub-quantum requests finish before concurrent
// pressure can even reach the admission gate), measures capacity on an
// ungated server (closed loop, concurrency = the limit), then drives an
// admission-limited server open-loop at factor times that rate with
// zipfian keys and burst arrivals, and evaluates the acceptance bars.
func runOverload(ctx context.Context, logger *slog.Logger, host *selfHosted, seed int64, maxInFlight int, factor float64) (*overloadScenario, error) {
	if maxInFlight <= 0 {
		maxInFlight = 4
	}
	if factor < 4 {
		factor = 4
	}
	root, err := os.MkdirTemp("", "dnhload-overload-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	const overloadDatasets = 2000
	m, err := archive.Generate(root, archive.DefaultGenConfig(overloadDatasets, seed+3))
	if err != nil {
		return nil, err
	}
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	start := time.Now()
	if _, err := sys.Wrangle(); err != nil {
		return nil, err
	}
	logger.Info("overload: wrangled rig", "datasets", sys.DatasetCount(), "duration", time.Since(start))
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Healthy phase on an ungated server, closed loop at the gate's
	// design operating point — slots plus queue depth, the concurrency an
	// admitted request experiences when the building is full. Its p99 is
	// the flat-p99 baseline and sizes the gated server's queue wait — a
	// queue that holds requests longer than a healthy service time only
	// converts sheddable load into tail latency.
	queueDepth := 2 * maxInFlight
	healthyConc := maxInFlight + queueDepth
	healthyBase, healthySrv, err := host.startServer(server.Config{Sys: sys, Logger: quiet, SlowThreshold: -1})
	if err != nil {
		return nil, err
	}
	healthyQs, err := workload.Queries(m, 100, seed+7, workload.DefaultRelevance(), false)
	if err != nil {
		healthySrv()
		return nil, err
	}
	healthyReqs, err := searchRequests(healthyBase, healthyQs)
	if err != nil {
		healthySrv()
		return nil, err
	}
	logger.Info("overload: healthy phase", "requests", len(healthyReqs), "concurrency", healthyConc)
	healthy, err := workload.Replay(ctx, healthyReqs, workload.LoadOptions{Concurrency: healthyConc})
	healthySrv()
	if err != nil {
		return nil, err
	}
	if healthy.Errors > 0 {
		return nil, fmt.Errorf("overload healthy phase had %d errors", healthy.Errors)
	}
	queueWait := time.Duration(healthy.P99Ms / 2 * float64(time.Millisecond))
	if queueWait < 2*time.Millisecond {
		queueWait = 2 * time.Millisecond
	}
	if queueWait > 10*time.Millisecond {
		queueWait = 10 * time.Millisecond
	}

	sc := &overloadScenario{
		MaxInFlight:  maxInFlight,
		QueueDepth:   queueDepth,
		QueueWaitMs:  float64(queueWait) / float64(time.Millisecond),
		Factor:       factor,
		HealthyQPS:   healthy.QPS,
		HealthyP99Ms: healthy.P99Ms,
		Healthy:      healthy,
	}
	overBase, overSrv, err := host.startServer(server.Config{
		Sys:           sys,
		Logger:        quiet,
		SlowThreshold: -1,
		MaxInFlight:   maxInFlight,
		QueueDepth:    sc.QueueDepth,
		QueueWait:     queueWait,
	})
	if err != nil {
		return nil, err
	}
	defer overSrv()

	// The overload stream: zipfian draws over a fresh query pool at
	// factor x healthy throughput, burst arrivals. Popular keys repeat
	// back to back — first as collapsed flights, then as cache hits —
	// while the distinct tail keeps the executor saturated.
	offered := factor * healthy.QPS
	total := int(math.Ceil(offered * 1.5)) // ~1.5s of offered load
	if total > 3000 {
		total = 3000
	}
	if total < 200 {
		total = 200
	}
	poolSize := total / 4
	if poolSize < 64 {
		poolSize = 64
	}
	poolQs, err := workload.Queries(m, poolSize, seed+13, workload.DefaultRelevance(), false)
	if err != nil {
		return nil, err
	}
	poolReqs, err := searchRequests(overBase, poolQs)
	if err != nil {
		return nil, err
	}
	// Each zipf draw is issued twice, back to back, so identical cold
	// queries land inside the same burst — the N-concurrent-misses shape
	// that singleflight collapses (a steady stream of unique keys would
	// only ever have one flight per key in the air).
	draws := workload.ZipfIndices((total+1)/2, len(poolReqs), 1.2, seed+17)
	stream := make([]workload.HTTPRequest, total)
	for i := range stream {
		stream[i] = poolReqs[draws[i/2]]
	}
	arrivals := workload.BurstArrivals(total, 16, offered)
	logger.Info("overload: open-loop phase",
		"requests", total, "offeredQPS", offered, "pool", poolSize,
		"maxInFlight", maxInFlight, "queueWaitMs", sc.QueueWaitMs)
	// A short closed-loop warmup establishes the connection pool so the
	// measured run doesn't start with a dial stampede.
	warmQs, err := workload.Queries(m, 32, seed+11, workload.DefaultRelevance(), false)
	if err != nil {
		return nil, err
	}
	warmReqs, err := searchRequests(overBase, warmQs)
	if err != nil {
		return nil, err
	}
	if _, err := workload.Replay(ctx, warmReqs, workload.LoadOptions{Concurrency: 8}); err != nil {
		return nil, err
	}
	// 32 outstanding bounds the generator's goroutine storm (client and
	// server share the machine) while still offering far more concurrency
	// than the limit-plus-queue can admit.
	stats, err := workload.Replay(ctx, stream, workload.LoadOptions{Arrivals: arrivals, MaxOutstanding: 32})
	if err != nil {
		return nil, err
	}
	if srvStats, err := fetchStats(ctx, overBase); err != nil {
		logger.Warn("overload: stats fetch failed", "err", err)
	} else {
		sc.Server = srvStats.Overload
	}

	sc.Stats = stats
	sc.P99UnderOverloadMs = stats.AdmittedP99Ms
	sc.ShedRate = stats.ShedRate
	sc.CollapsedFlights = stats.CacheStates["collapsed"]
	sc.ShedObserved = stats.Status.Shed429 > 0
	sc.CollapseObserved = sc.CollapsedFlights > 0
	sc.ZeroServerErrors = stats.Status.Server5xx == 0 && stats.Status.Transport == 0
	// The 2x bar is against healthy p99, floored at 5ms: below that the
	// budget is smaller than scheduler noise on a shared runner and the
	// comparison measures the OS, not the server.
	budget := 2 * math.Max(healthy.P99Ms, 5)
	sc.AdmittedP99Within2x = stats.AdmittedP99Ms > 0 && stats.AdmittedP99Ms <= budget
	// Shed cost is judged inside the gate (decision time): the client-
	// observed shedP50Ms also charges the generator's own scheduling to
	// the server when both share the machine. Timeout sheds cost the
	// configured wait by design and are bounded by queueWait.
	switch {
	case sc.Server.ShedQueueFull > 0:
		sc.ShedsFast = sc.Server.ShedDecisionMeanUs < 1000
	case stats.Status.Shed429 > 0:
		sc.ShedsFast = stats.ShedP50Ms < sc.QueueWaitMs+2
	}
	logger.Info("overload: done",
		"admittedP99Ms", stats.AdmittedP99Ms, "budgetMs", budget,
		"shedRate", stats.ShedRate, "shedP50Ms", stats.ShedP50Ms,
		"shedDecisionMeanUs", sc.Server.ShedDecisionMeanUs,
		"collapsed", sc.CollapsedFlights, "s5xx", stats.Status.Server5xx)
	return sc, nil
}

// fetchStats reads a server's /stats document.
func fetchStats(ctx context.Context, base string) (server.StatsResponse, error) {
	var stats server.StatsResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return stats, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return stats, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return stats, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	return stats, json.NewDecoder(resp.Body).Decode(&stats)
}

// runPostPublish grows the archive, re-wrangles (bumping the
// generation), and immediately replays the already-warm cold set: with
// stale-while-revalidate the replay is served the previous generation's
// bytes at cache-hit speed instead of paying a cold miss per query.
func runPostPublish(ctx context.Context, logger *slog.Logger, host *selfHosted, coldReqs []workload.HTTPRequest, coldP99Ms float64, seed int64) (*postPublishScenario, error) {
	hot := coldReqs
	if len(hot) > 64 {
		hot = hot[:64]
	}
	if _, err := archive.Generate(filepath.Join(host.root, "extra"), archive.DefaultGenConfig(10, seed+99)); err != nil {
		return nil, err
	}
	genBefore := host.sys.SnapshotGeneration()
	if _, err := host.sys.Wrangle(); err != nil {
		return nil, err
	}
	if host.sys.SnapshotGeneration() == genBefore {
		return nil, fmt.Errorf("post-publish: generation did not bump")
	}
	logger.Info("post-publish phase", "requests", len(hot),
		"generation", host.sys.SnapshotGeneration())
	stats, err := workload.Replay(ctx, hot, workload.LoadOptions{Concurrency: 4})
	if err != nil {
		return nil, err
	}
	sc := &postPublishScenario{
		Stats:         stats,
		StaleServed:   stats.CacheStates["stale"],
		P99Ms:         stats.P99Ms,
		ColdMissP99Ms: coldP99Ms,
	}
	sc.CliffEliminated = sc.StaleServed > 0 && stats.Errors == 0 && stats.P99Ms < coldP99Ms
	return sc, nil
}

// runDeadline replays fresh queries with X-Deadline-Ms: 0 (an already-
// expired budget) twice over: every response must be 200 partial, and
// the second round must not see cache hits — partial results are never
// cached.
func runDeadline(ctx context.Context, logger *slog.Logger, host *selfHosted, m *archive.Manifest, seed int64) (*deadlineScenario, error) {
	// A dedicated server with a cold cache: a query another phase already
	// cached would (correctly) answer complete from the cache before the
	// deadline matters, which is not the contract under test.
	base, stop, err := host.startServer(server.Config{
		Sys:           host.sys,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		SlowThreshold: -1,
	})
	if err != nil {
		return nil, err
	}
	defer stop()
	qs, err := workload.Queries(m, 10, seed+23, workload.DefaultRelevance(), false)
	if err != nil {
		return nil, err
	}
	reqs, err := searchRequests(base, qs)
	if err != nil {
		return nil, err
	}
	reqs = append(reqs, reqs...) // second round: same queries again
	for i := range reqs {
		reqs[i].Header = map[string]string{"X-Deadline-Ms": "0"}
	}
	logger.Info("deadline phase", "requests", len(reqs))
	stats, err := workload.Replay(ctx, reqs, workload.LoadOptions{Concurrency: 4})
	if err != nil {
		return nil, err
	}
	return &deadlineScenario{
		Stats:       stats,
		AllPartial:  stats.Partials == len(reqs) && stats.Status.OK2xx == len(reqs),
		NeverCached: stats.CacheStates["hit"] == 0,
	}, nil
}

// runReplication builds a leader/follower pair — a durable leader over
// its own archive, a read replica tailing it — then interleaves live
// publishes (and a leader compaction) with a query replay against the
// follower, measuring serving throughput and per-publish catch-up lag,
// and finally replays a probe set against both nodes expecting
// byte-identical bodies at the same generation.
func runReplication(ctx context.Context, logger *slog.Logger, host *selfHosted, seed int64) (*replicationScenario, error) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	root, err := os.MkdirTemp("", "dnhload-replication-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	archiveRoot := filepath.Join(root, "archive")
	m, err := archive.Generate(archiveRoot, archive.DefaultGenConfig(400, seed+41))
	if err != nil {
		return nil, err
	}
	lsys, err := metamess.New(metamess.Config{
		ArchiveRoot:     archiveRoot,
		DataDir:         filepath.Join(root, "leader-data"),
		CompactMinBytes: 1,
	})
	if err != nil {
		return nil, err
	}
	defer lsys.Close()
	if _, err := lsys.Wrangle(); err != nil {
		return nil, err
	}
	leaderBase, leaderStop, err := host.startServer(server.Config{Sys: lsys, Logger: quiet, SlowThreshold: -1})
	if err != nil {
		return nil, err
	}
	defer leaderStop()

	fsys, err := metamess.New(metamess.Config{
		ArchiveRoot: filepath.Join(root, "follower-throwaway"),
		DataDir:     filepath.Join(root, "follower-data"),
	})
	if err != nil {
		return nil, err
	}
	defer fsys.Close()
	replica, err := server.NewReplicator(server.ReplicaConfig{
		Leader:   leaderBase,
		Sys:      fsys,
		PollWait: 250 * time.Millisecond,
		Backoff:  50 * time.Millisecond,
		Logger:   quiet,
	})
	if err != nil {
		return nil, err
	}
	replica.Start()
	defer replica.Stop()
	followerBase, followerStop, err := host.startServer(server.Config{Sys: fsys, Logger: quiet, SlowThreshold: -1, Replica: replica})
	if err != nil {
		return nil, err
	}
	defer followerStop()

	awaitCatchUp := func(target uint64) (time.Duration, error) {
		t0 := time.Now()
		deadline := t0.Add(30 * time.Second)
		for fsys.SnapshotGeneration() < target {
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("replication: follower stuck at generation %d, want %d",
					fsys.SnapshotGeneration(), target)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return time.Since(t0), nil
	}
	if _, err := awaitCatchUp(lsys.SnapshotGeneration()); err != nil {
		return nil, err
	}

	// The follower replay: leader-derived queries rebased onto the
	// replica, running concurrently with a publish stream on the leader.
	qs, err := workload.Queries(m, 300, seed+43, workload.DefaultRelevance(), false)
	if err != nil {
		return nil, err
	}
	leaderReqs, err := searchRequests(leaderBase, qs)
	if err != nil {
		return nil, err
	}
	followerReqs := workload.Rebase(leaderReqs, leaderBase, followerBase)

	const publishes = 4
	var lags []float64
	publishErr := make(chan error, 1)
	go func() {
		for i := 0; i < publishes; i++ {
			if _, err := archive.Generate(filepath.Join(archiveRoot, fmt.Sprintf("rep-%d", i)),
				archive.DefaultGenConfig(8, seed+100+int64(i))); err != nil {
				publishErr <- err
				return
			}
			if _, err := lsys.Wrangle(); err != nil {
				publishErr <- err
				return
			}
			target := lsys.SnapshotGeneration()
			lag, err := awaitCatchUp(target)
			if err != nil {
				publishErr <- err
				return
			}
			lags = append(lags, float64(lag)/float64(time.Millisecond))
			if i == 1 {
				// A mid-stream leader compaction: rotation must not disturb
				// the live tail.
				if _, err := lsys.CompactIfNeeded(); err != nil {
					publishErr <- err
					return
				}
			}
		}
		publishErr <- nil
	}()
	logger.Info("replication: follower replay", "requests", len(followerReqs), "publishes", publishes)
	stats, err := workload.Replay(ctx, followerReqs, workload.LoadOptions{Concurrency: 8})
	if err != nil {
		return nil, err
	}
	if err := <-publishErr; err != nil {
		return nil, err
	}

	// Byte-identity probe at the final (caught-up) generation.
	probes := leaderReqs
	if len(probes) > 32 {
		probes = probes[:32]
	}
	byteIdentical := true
	for i, lr := range probes {
		fr := workload.Rebase([]workload.HTTPRequest{lr}, leaderBase, followerBase)[0]
		lb, lgen, err := fetchBody(ctx, lr)
		if err != nil {
			return nil, err
		}
		fb, fgen, err := fetchBody(ctx, fr)
		if err != nil {
			return nil, err
		}
		if lgen != fgen || !bytes.Equal(lb, fb) {
			logger.Error("replication: divergent response", "probe", i, "leaderGen", lgen, "followerGen", fgen)
			byteIdentical = false
		}
	}

	sort.Float64s(lags)
	sc := &replicationScenario{
		Publishes:      publishes,
		Follower:       stats,
		FollowerQPS:    stats.QPS,
		FollowerP99Ms:  stats.P99Ms,
		Resyncs:        replica.Stats().Resyncs,
		AppliedRecords: replica.Stats().AppliedRecords,
		ByteIdentical:  byteIdentical,
		ZeroErrors:     stats.Errors == 0,
	}
	if n := len(lags); n > 0 {
		rank := int(0.99*float64(n)+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= n {
			rank = n - 1
		}
		sc.LagP99Ms = lags[rank]
		sc.LagMaxMs = lags[n-1]
	}
	logger.Info("replication: done",
		"followerQPS", sc.FollowerQPS, "followerP99Ms", sc.FollowerP99Ms,
		"lagP99Ms", sc.LagP99Ms, "resyncs", sc.Resyncs,
		"byteIdentical", sc.ByteIdentical, "errors", stats.Errors)
	return sc, nil
}

// fetchBody issues one request and returns its body bytes and the
// X-Dnhd-Generation header — the byte-identity probe primitive.
func fetchBody(ctx context.Context, r workload.HTTPRequest) ([]byte, string, error) {
	var reqBody io.Reader
	if r.Body != nil {
		reqBody = bytes.NewReader(r.Body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, r.URL, reqBody)
	if err != nil {
		return nil, "", err
	}
	if r.Body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("probe %s: status %d", r.URL, resp.StatusCode)
	}
	return body, resp.Header.Get("X-Dnhd-Generation"), nil
}

// runHostile replays fuzz-corpus strings as text queries: 400s are the
// expected outcome, 5xx (or a crash) is the failure being tested for.
func runHostile(ctx context.Context, logger *slog.Logger, base, corpusDirs string, seed int64) (*hostileScenario, error) {
	var corpus []string
	for _, dir := range strings.Split(corpusDirs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		ss, err := workload.CorpusStrings(dir)
		if err != nil {
			logger.Warn("hostile corpus unreadable", "dir", dir, "err", err)
			continue
		}
		corpus = append(corpus, ss...)
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("no corpus strings found in %q", corpusDirs)
	}
	reqs := workload.HostileTextRequests(base, corpus, 200, seed+31)
	logger.Info("hostile phase", "corpus", len(corpus), "requests", len(reqs))
	stats, err := workload.Replay(ctx, reqs, workload.LoadOptions{Concurrency: 8, TolerateClientErrors: true})
	if err != nil {
		return nil, err
	}
	return &hostileScenario{
		Corpus:           len(corpus),
		Stats:            stats,
		ZeroServerErrors: stats.Status.Server5xx == 0 && stats.Status.Transport == 0,
	}, nil
}

// p99Exemplar re-issues the cold phase's p99-rank request with a forced
// trace and returns its span tree for the report.
func p99Exemplar(ctx context.Context, reqs []workload.HTTPRequest, latencies []time.Duration) (*traceExemplar, error) {
	if len(latencies) != len(reqs) || len(reqs) == 0 {
		return nil, fmt.Errorf("no latencies recorded")
	}
	// Nearest-rank p99 over the request indexes sorted by latency.
	idx := make([]int, len(latencies))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return latencies[idx[a]] < latencies[idx[b]] })
	rank := int(0.99*float64(len(idx))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(idx) {
		rank = len(idx) - 1
	}
	pick := idx[rank]

	r := reqs[pick]
	var reqBody io.Reader
	if r.Body != nil {
		reqBody = bytes.NewReader(r.Body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, r.URL, reqBody)
	if err != nil {
		return nil, err
	}
	if r.Body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("X-Trace", "1")
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	traced := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("traced replay: status %d", resp.StatusCode)
	}
	var body struct {
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	if len(body.Trace) == 0 {
		return nil, fmt.Errorf("traced replay: no trace in response")
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return &traceExemplar{
		ColdLatencyMs:   ms(latencies[pick]),
		TracedLatencyMs: ms(traced),
		Trace:           body.Trace,
	}, nil
}

// selfHosted is the in-process benchmark rig: one generated archive and
// wrangled system, a main (ungated, stale-window-enabled) server, and
// the ability to start further servers over the same system.
type selfHosted struct {
	root     string
	sys      *metamess.System
	manifest *archive.Manifest
	base     string
	shutdown func()
}

// startServer starts an additional server over the rig's system and
// returns its base URL and a stop func.
func (h *selfHosted) startServer(cfg server.Config) (string, func(), error) {
	srv, err := server.New(cfg)
	if err != nil {
		return "", nil, err
	}
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}
	return fmt.Sprintf("http://%s", bound), stop, nil
}

// selfHost generates an archive, wrangles it, and starts an in-process
// server on a loopback port.
func selfHost(logger *slog.Logger, datasets int, seed int64, slowThreshold, staleWindow time.Duration) (*selfHosted, error) {
	root, err := os.MkdirTemp("", "dnhload-archive-")
	if err != nil {
		return nil, err
	}
	cleanup := func() { os.RemoveAll(root) }
	m, err := archive.Generate(root, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		cleanup()
		return nil, err
	}
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		cleanup()
		return nil, err
	}
	start := time.Now()
	if _, err = sys.Wrangle(); err != nil {
		cleanup()
		return nil, err
	}
	logger.Info("wrangled", "datasets", sys.DatasetCount(), "duration", time.Since(start))
	h := &selfHosted{root: root, sys: sys, manifest: m}
	base, stop, err := h.startServer(server.Config{
		Sys:           sys,
		Logger:        logger,
		SlowThreshold: slowThreshold,
		StaleWindow:   staleWindow,
	})
	if err != nil {
		cleanup()
		return nil, err
	}
	h.base = base
	h.shutdown = func() {
		stop()
		cleanup()
	}
	return h, nil
}
