// Command dnhload replays a generated query workload against a dnhd
// server, concurrently, and reports serving throughput and latency
// percentiles — the numbers in BENCH_serve.json.
//
// Two modes:
//
//	dnhload -out BENCH_serve.json                 # self-hosted benchmark:
//	    generates an archive, wrangles it, starts an in-process server,
//	    and replays cold (distinct queries) and hot (one repeated query)
//	    phases against it.
//
//	dnhload -addr http://127.0.0.1:8080 -manifest /tmp/archive/manifest.json
//	    replays against an already-running server, deriving queries from
//	    the archive's ground-truth manifest (e.g. the CI smoke test, with
//	    a SIGHUP re-wrangle racing the replay).
//
// After the cold phase the p99-rank request is re-issued once with a
// forced trace (X-Trace: 1) and its span tree lands in the report as an
// exemplar — a worst-case stage breakdown next to the percentile it
// explains. -slow-threshold sets the self-hosted server's slow-query
// log threshold (recorded in the report either way).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"time"

	"metamess"
	"metamess/internal/archive"
	"metamess/internal/server"
	"metamess/internal/workload"
)

// searchRequests converts judged workload queries into POST /search
// wire requests against base.
func searchRequests(base string, queries []workload.Judged) ([]workload.HTTPRequest, error) {
	out := make([]workload.HTTPRequest, len(queries))
	for i, j := range queries {
		body, err := json.Marshal(server.RequestFromQuery(j.Query))
		if err != nil {
			return nil, err
		}
		out[i] = workload.HTTPRequest{Method: http.MethodPost, URL: base + "/search", Body: body}
	}
	return out, nil
}

// traceExemplar is one forced-trace request embedded in the report: the
// cold-phase p99-rank query replayed with X-Trace: 1.
type traceExemplar struct {
	// ColdLatencyMs is the latency the request observed during the cold
	// phase (what ranked it at the p99); TracedLatencyMs is the re-issue.
	ColdLatencyMs   float64         `json:"coldLatencyMs"`
	TracedLatencyMs float64         `json:"tracedLatencyMs"`
	Trace           json.RawMessage `json:"trace"`
}

// benchReport is the BENCH_serve.json schema.
type benchReport struct {
	GeneratedAt string `json:"generatedAt"`
	Mode        string `json:"mode"`
	Datasets    int    `json:"datasets"`
	Concurrency int    `json:"concurrency"`
	// Cold replays distinct queries (mostly cache misses); Hot replays
	// one query (first request misses, the rest hit the snapshot-keyed
	// cache).
	Cold workload.LoadStats `json:"cold"`
	Hot  workload.LoadStats `json:"hot"`
	// HotSpeedupP50 is Cold.P50Ms / Hot.P50Ms — how much faster the
	// cached hot query is at the median.
	HotSpeedupP50 float64 `json:"hotSpeedupP50"`
	// SlowThresholdMs is the server's slow-query log threshold during
	// the run; P99Exemplar is the cold p99 request's forced span tree.
	SlowThresholdMs float64        `json:"slowThresholdMs,omitempty"`
	P99Exemplar     *traceExemplar `json:"p99Exemplar,omitempty"`
}

func main() {
	addr := flag.String("addr", "", "base URL of a running dnhd (empty = self-hosted benchmark)")
	manifestPath := flag.String("manifest", "", "archive manifest.json for query derivation (required with -addr)")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	n := flag.Int("n", 400, "requests per phase")
	conc := flag.Int("c", 8, "concurrent requests")
	datasets := flag.Int("datasets", 300, "archive size in self-hosted mode")
	seed := flag.Int64("seed", 42, "workload/archive seed")
	slowThreshold := flag.Duration("slow-threshold", server.DefaultSlowThreshold,
		"self-hosted server's slow-query log threshold (negative disables)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	rep := benchReport{Concurrency: *conc}
	if *slowThreshold > 0 {
		rep.SlowThresholdMs = float64(*slowThreshold) / float64(time.Millisecond)
	}

	var m *archive.Manifest
	base := *addr
	if base == "" {
		rep.Mode = "selfhosted"
		var shutdown func()
		var err error
		base, m, shutdown, err = selfHost(logger, *datasets, *seed, *slowThreshold)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	} else {
		rep.Mode = "external"
		if *manifestPath == "" {
			fatal(fmt.Errorf("-manifest is required with -addr"))
		}
		var err error
		m, err = archive.ReadManifest(*manifestPath)
		if err != nil {
			fatal(err)
		}
	}
	rep.Datasets = len(m.Datasets)

	queries, err := workload.Queries(m, *n, *seed, workload.DefaultRelevance(), false)
	if err != nil {
		fatal(err)
	}
	coldReqs, err := searchRequests(base, queries)
	if err != nil {
		fatal(err)
	}
	hotReqs := make([]workload.HTTPRequest, *n)
	for i := range hotReqs {
		hotReqs[i] = coldReqs[0]
	}

	ctx := context.Background()
	opts := workload.LoadOptions{Concurrency: *conc}
	logger.Info("cold phase", "queries", len(coldReqs), "concurrency", *conc)
	if rep.Cold, err = workload.Replay(ctx, coldReqs, opts); err != nil {
		fatal(err)
	}
	if ex, err := p99Exemplar(ctx, coldReqs, rep.Cold.Latencies); err != nil {
		logger.Warn("p99 exemplar trace failed", "err", err)
	} else {
		rep.P99Exemplar = ex
	}
	logger.Info("hot phase", "requests", len(hotReqs), "concurrency", *conc)
	if rep.Hot, err = workload.Replay(ctx, hotReqs, opts); err != nil {
		fatal(err)
	}
	if rep.Hot.P50Ms > 0 {
		rep.HotSpeedupP50 = rep.Cold.P50Ms / rep.Hot.P50Ms
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	body = append(body, '\n')
	if *out == "" {
		os.Stdout.Write(body)
	} else if err := os.WriteFile(*out, body, 0o644); err != nil {
		fatal(err)
	}
	logger.Info("done",
		"coldQPS", rep.Cold.QPS, "coldP50Ms", rep.Cold.P50Ms, "coldP99Ms", rep.Cold.P99Ms, "coldErrors", rep.Cold.Errors,
		"hotQPS", rep.Hot.QPS, "hotP50Ms", rep.Hot.P50Ms, "hotP99Ms", rep.Hot.P99Ms, "hotErrors", rep.Hot.Errors,
		"hotP50Speedup", rep.HotSpeedupP50)
	if rep.Cold.Errors+rep.Hot.Errors > 0 {
		os.Exit(1)
	}
}

// p99Exemplar re-issues the cold phase's p99-rank request with a forced
// trace and returns its span tree for the report.
func p99Exemplar(ctx context.Context, reqs []workload.HTTPRequest, latencies []time.Duration) (*traceExemplar, error) {
	if len(latencies) != len(reqs) || len(reqs) == 0 {
		return nil, fmt.Errorf("no latencies recorded")
	}
	// Nearest-rank p99 over the request indexes sorted by latency.
	idx := make([]int, len(latencies))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return latencies[idx[a]] < latencies[idx[b]] })
	rank := int(0.99*float64(len(idx))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(idx) {
		rank = len(idx) - 1
	}
	pick := idx[rank]

	r := reqs[pick]
	var reqBody io.Reader
	if r.Body != nil {
		reqBody = bytes.NewReader(r.Body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, r.URL, reqBody)
	if err != nil {
		return nil, err
	}
	if r.Body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("X-Trace", "1")
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	traced := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("traced replay: status %d", resp.StatusCode)
	}
	var body struct {
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	if len(body.Trace) == 0 {
		return nil, fmt.Errorf("traced replay: no trace in response")
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return &traceExemplar{
		ColdLatencyMs:   ms(latencies[pick]),
		TracedLatencyMs: ms(traced),
		Trace:           body.Trace,
	}, nil
}

// selfHost generates an archive, wrangles it, and starts an in-process
// server on a loopback port.
func selfHost(logger *slog.Logger, datasets int, seed int64, slowThreshold time.Duration) (base string, m *archive.Manifest, shutdown func(), err error) {
	root, err := os.MkdirTemp("", "dnhload-archive-")
	if err != nil {
		return "", nil, nil, err
	}
	cleanup := func() { os.RemoveAll(root) }
	m, err = archive.Generate(root, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	start := time.Now()
	if _, err = sys.Wrangle(); err != nil {
		cleanup()
		return "", nil, nil, err
	}
	logger.Info("wrangled", "datasets", sys.DatasetCount(), "duration", time.Since(start))
	srv, err := server.New(server.Config{Sys: sys, Logger: logger, SlowThreshold: slowThreshold})
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
		cleanup()
	}
	return fmt.Sprintf("http://%s", bound), m, shutdown, nil
}
