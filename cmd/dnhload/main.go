// Command dnhload replays a generated query workload against a dnhd
// server, concurrently, and reports serving throughput and latency
// percentiles — the numbers in BENCH_serve.json.
//
// Two modes:
//
//	dnhload -out BENCH_serve.json                 # self-hosted benchmark:
//	    generates an archive, wrangles it, starts an in-process server,
//	    and replays cold (distinct queries) and hot (one repeated query)
//	    phases against it.
//
//	dnhload -addr http://127.0.0.1:8080 -manifest /tmp/archive/manifest.json
//	    replays against an already-running server, deriving queries from
//	    the archive's ground-truth manifest (e.g. the CI smoke test, with
//	    a SIGHUP re-wrangle racing the replay).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"metamess"
	"metamess/internal/archive"
	"metamess/internal/server"
	"metamess/internal/workload"
)

// searchRequests converts judged workload queries into POST /search
// wire requests against base.
func searchRequests(base string, queries []workload.Judged) ([]workload.HTTPRequest, error) {
	out := make([]workload.HTTPRequest, len(queries))
	for i, j := range queries {
		body, err := json.Marshal(server.RequestFromQuery(j.Query))
		if err != nil {
			return nil, err
		}
		out[i] = workload.HTTPRequest{Method: http.MethodPost, URL: base + "/search", Body: body}
	}
	return out, nil
}

// benchReport is the BENCH_serve.json schema.
type benchReport struct {
	GeneratedAt string `json:"generatedAt"`
	Mode        string `json:"mode"`
	Datasets    int    `json:"datasets"`
	Concurrency int    `json:"concurrency"`
	// Cold replays distinct queries (mostly cache misses); Hot replays
	// one query (first request misses, the rest hit the snapshot-keyed
	// cache).
	Cold workload.LoadStats `json:"cold"`
	Hot  workload.LoadStats `json:"hot"`
	// HotSpeedupP50 is Cold.P50Ms / Hot.P50Ms — how much faster the
	// cached hot query is at the median.
	HotSpeedupP50 float64 `json:"hotSpeedupP50"`
}

func main() {
	addr := flag.String("addr", "", "base URL of a running dnhd (empty = self-hosted benchmark)")
	manifestPath := flag.String("manifest", "", "archive manifest.json for query derivation (required with -addr)")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	n := flag.Int("n", 400, "requests per phase")
	conc := flag.Int("c", 8, "concurrent requests")
	datasets := flag.Int("datasets", 300, "archive size in self-hosted mode")
	seed := flag.Int64("seed", 42, "workload/archive seed")
	flag.Parse()

	logger := log.New(os.Stderr, "dnhload: ", log.LstdFlags)
	rep := benchReport{Concurrency: *conc}

	var m *archive.Manifest
	base := *addr
	if base == "" {
		rep.Mode = "selfhosted"
		var shutdown func()
		var err error
		base, m, shutdown, err = selfHost(logger, *datasets, *seed)
		if err != nil {
			logger.Fatal(err)
		}
		defer shutdown()
	} else {
		rep.Mode = "external"
		if *manifestPath == "" {
			logger.Fatal("-manifest is required with -addr")
		}
		var err error
		m, err = archive.ReadManifest(*manifestPath)
		if err != nil {
			logger.Fatal(err)
		}
	}
	rep.Datasets = len(m.Datasets)

	queries, err := workload.Queries(m, *n, *seed, workload.DefaultRelevance(), false)
	if err != nil {
		logger.Fatal(err)
	}
	coldReqs, err := searchRequests(base, queries)
	if err != nil {
		logger.Fatal(err)
	}
	hotReqs := make([]workload.HTTPRequest, *n)
	for i := range hotReqs {
		hotReqs[i] = coldReqs[0]
	}

	ctx := context.Background()
	opts := workload.LoadOptions{Concurrency: *conc}
	logger.Printf("cold phase: %d distinct queries, c=%d", len(coldReqs), *conc)
	if rep.Cold, err = workload.Replay(ctx, coldReqs, opts); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("hot phase: 1 query x %d, c=%d", len(hotReqs), *conc)
	if rep.Hot, err = workload.Replay(ctx, hotReqs, opts); err != nil {
		logger.Fatal(err)
	}
	if rep.Hot.P50Ms > 0 {
		rep.HotSpeedupP50 = rep.Cold.P50Ms / rep.Hot.P50Ms
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		logger.Fatal(err)
	}
	body = append(body, '\n')
	if *out == "" {
		os.Stdout.Write(body)
	} else if err := os.WriteFile(*out, body, 0o644); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("cold: %.0f qps p50=%.2fms p99=%.2fms (%d errors); hot: %.0f qps p50=%.2fms p99=%.2fms (%d errors); hot p50 speedup %.1fx",
		rep.Cold.QPS, rep.Cold.P50Ms, rep.Cold.P99Ms, rep.Cold.Errors,
		rep.Hot.QPS, rep.Hot.P50Ms, rep.Hot.P99Ms, rep.Hot.Errors, rep.HotSpeedupP50)
	if rep.Cold.Errors+rep.Hot.Errors > 0 {
		os.Exit(1)
	}
}

// selfHost generates an archive, wrangles it, and starts an in-process
// server on a loopback port.
func selfHost(logger *log.Logger, datasets int, seed int64) (base string, m *archive.Manifest, shutdown func(), err error) {
	root, err := os.MkdirTemp("", "dnhload-archive-")
	if err != nil {
		return "", nil, nil, err
	}
	cleanup := func() { os.RemoveAll(root) }
	m, err = archive.Generate(root, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	start := time.Now()
	if _, err = sys.Wrangle(); err != nil {
		cleanup()
		return "", nil, nil, err
	}
	logger.Printf("wrangled %d datasets in %v", sys.DatasetCount(), time.Since(start))
	srv, err := server.New(server.Config{Sys: sys, Logger: logger})
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
		cleanup()
	}
	return fmt.Sprintf("http://%s", bound), m, shutdown, nil
}
