// Command refinectl works with transformation rule files in the poster's
// JSON format: discover rules from a CSV grid by clustering, apply a
// rule file to a grid, or validate a rule file.
//
// Usage:
//
//	refinectl discover -in values.csv -column field -method fingerprint -out rules.json
//	refinectl apply -in values.csv -rules rules.json -out cleaned.csv
//	refinectl check -rules rules.json
package main

import (
	"flag"
	"fmt"
	"os"

	"metamess/internal/cluster"
	"metamess/internal/refine"
	"metamess/internal/table"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "discover":
		err = discover(os.Args[2:])
	case "apply":
		err = apply(os.Args[2:])
	case "check":
		err = check(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "refinectl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  refinectl discover -in grid.csv -column field [-method fingerprint|ngram|phonetic|levenshtein|jaro] [-threshold 0.84] -out rules.json
  refinectl apply -in grid.csv -rules rules.json -out cleaned.csv
  refinectl check -rules rules.json`)
}

func loadGrid(path string) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return table.ReadCSV(f)
}

func discover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	in := fs.String("in", "", "input CSV grid (required)")
	column := fs.String("column", "field", "column to cluster")
	methodName := fs.String("method", "fingerprint", "clustering method")
	threshold := fs.Float64("threshold", 0.84, "similarity threshold for nearest-neighbour methods")
	out := fs.String("out", "", "output rule file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	var method cluster.Method
	switch *methodName {
	case "fingerprint":
		method = cluster.Fingerprint()
	case "ngram":
		method = cluster.NGramFingerprint(2)
	case "phonetic":
		method = cluster.Phonetic()
	case "levenshtein":
		method = cluster.Levenshtein(*threshold)
	case "jaro":
		method = cluster.JaroWinkler(*threshold)
	default:
		return fmt.Errorf("unknown method %q", *methodName)
	}
	grid, err := loadGrid(*in)
	if err != nil {
		return err
	}
	clusters, err := cluster.Discover(grid, *column, method)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "discovered %d clusters with %s\n", len(clusters), method.Name())
	for _, c := range clusters {
		fmt.Fprintf(os.Stderr, "  -> %s (%d values, %d rows)\n", c.Recommended, c.Size(), c.RowCount())
	}
	op := cluster.ToMassEdit(*column, clusters, "")
	var ops []refine.Operation
	if op != nil {
		ops = append(ops, op)
	}
	data, err := refine.ExportJSON(ops)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(*out, data, 0o644)
}

func apply(args []string) error {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	in := fs.String("in", "", "input CSV grid (required)")
	rulesPath := fs.String("rules", "", "rule file (required)")
	out := fs.String("out", "", "output CSV (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *rulesPath == "" {
		return fmt.Errorf("-in and -rules are required")
	}
	grid, err := loadGrid(*in)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*rulesPath)
	if err != nil {
		return err
	}
	ops, err := refine.ImportJSON(data)
	if err != nil {
		return err
	}
	project := refine.NewProject(grid)
	results, err := project.ApplyAll(ops)
	if err != nil {
		return err
	}
	for i, r := range results {
		fmt.Fprintf(os.Stderr, "op %d (%s): %d cells changed\n", i, ops[i].OpName(), r.CellsChanged)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return project.Table().WriteCSV(w)
}

func check(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	rulesPath := fs.String("rules", "", "rule file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rulesPath == "" {
		return fmt.Errorf("-rules is required")
	}
	data, err := os.ReadFile(*rulesPath)
	if err != nil {
		return err
	}
	ops, err := refine.ImportJSON(data)
	if err != nil {
		return err
	}
	for i, op := range ops {
		fmt.Printf("op %d: %s — %s\n", i, op.OpName(), op.Description())
	}
	fmt.Printf("%d operations OK\n", len(ops))
	return nil
}
