// Command experiments regenerates every exhibit of the poster — Table 1,
// the five figures, and the three ablations — and prints the result
// tables. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	experiments [-only T1,F1] [-datasets 60] [-queries 40] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"metamess/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	datasets := flag.Int("datasets", 60, "archive size per experiment")
	queries := flag.Int("queries", 40, "query count for retrieval experiments")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	var tmpDirs []string
	tmp := func() string {
		d, err := os.MkdirTemp("", "metamess-exp-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		tmpDirs = append(tmpDirs, d)
		return d
	}
	defer func() {
		for _, d := range tmpDirs {
			os.RemoveAll(d)
		}
	}()

	type runner struct {
		id  string
		run func() (*experiments.Table, error)
	}
	runners := []runner{
		{"T1", func() (*experiments.Table, error) {
			return experiments.Table1SemanticDiversity(tmp(), *datasets, *seed)
		}},
		{"F1", func() (*experiments.Table, error) {
			return experiments.Figure1RankedSearch(tmp(), tmp(), *datasets, *queries, *seed)
		}},
		{"F2", func() (*experiments.Table, error) {
			return experiments.Figure2CatalogBuild(
				[]string{tmp(), tmp(), tmp()}, []int{*datasets / 3, *datasets, *datasets * 3}, *seed)
		}},
		{"F3", func() (*experiments.Table, error) {
			return experiments.Figure3WranglingChain(tmp(), *datasets, *seed)
		}},
		{"F4", func() (*experiments.Table, error) {
			return experiments.Figure4Discovery(
				[]string{tmp(), tmp(), tmp()}, []float64{0.5, 1.0, 2.0}, *datasets, *seed)
		}},
		{"F5", func() (*experiments.Table, error) {
			return experiments.Figure5DatasetSummary(tmp(), *datasets, *seed)
		}},
		{"A1", func() (*experiments.Table, error) {
			return experiments.AblationCuratorLoop(tmp(), *datasets, *seed, 5)
		}},
		{"A2", func() (*experiments.Table, error) {
			return experiments.AblationValidation(tmp(), *seed)
		}},
		{"A3", func() (*experiments.Table, error) {
			return experiments.AblationScoring(tmp(), *datasets, *queries, *seed)
		}},
	}
	for _, r := range runners {
		if !selected(r.id) {
			continue
		}
		tab, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
	}
}
